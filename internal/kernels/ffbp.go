package kernels

import (
	"fmt"
	"math"

	"sarmany/internal/emu"
	"sarmany/internal/geom"
	"sarmany/internal/machine"
	"sarmany/internal/mat"
	"sarmany/internal/sar"
)

// ffbpPlan precomputes the factorization structure shared by the FFBP
// kernels: the aperture list and polar grid of every stage.
type ffbpPlan struct {
	p      sar.Params
	box    geom.SceneBox
	stages [][]geom.Aperture  // stages[s][i]
	grids  [][]geom.PolarGrid // grids[s][i]
	k      float64            // 4*pi/lambda
}

func newFFBPPlan(p sar.Params, box geom.SceneBox, data *mat.C) (*ffbpPlan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if data.Rows != p.NumPulses || data.Cols != p.NumBins {
		return nil, fmt.Errorf("kernels: data is %dx%d, params say %dx%d",
			data.Rows, data.Cols, p.NumPulses, p.NumBins)
	}
	if p.NumPulses&(p.NumPulses-1) != 0 {
		return nil, fmt.Errorf("kernels: NumPulses %d is not a power of two", p.NumPulses)
	}
	pl := &ffbpPlan{p: p, box: box, k: 4 * math.Pi / p.Wavelength}
	aps := geom.Stage0(p.NumPulses, -p.ApertureLength()/2, p.PulseSpacing)
	ntheta := 1
	for {
		gs := make([]geom.PolarGrid, len(aps))
		for i, a := range aps {
			gs[i] = box.GridFor(a, ntheta, p.NumBins, p.R0, p.DR)
		}
		pl.stages = append(pl.stages, aps)
		pl.grids = append(pl.grids, gs)
		if len(aps) == 1 {
			break
		}
		aps = geom.MergeStage(aps)
		ntheta *= 2
	}
	return pl, nil
}

// numMerges returns the number of merge iterations (10 for 1024 pulses).
func (pl *ffbpPlan) numMerges() int { return len(pl.stages) - 1 }

// imageOff returns the element offset of subaperture i's image within a
// stage buffer at stage s (every stage packs NumPulses*NumBins elements).
func (pl *ffbpPlan) imageOff(s, i int) int {
	return i * pl.grids[s][0].NTheta * pl.p.NumBins
}

// stage0Pixel computes (and charges) one carrier-removal output of the
// initial stage: a_0(r_c) = d(r_c) * exp(+i*k*r_c). The arithmetic matches
// ffbp.InitialStage exactly.
func (pl *ffbpPlan) stage0Pixel(m machine.Machine, v complex64, c int) complex64 {
	m.FMA(1) // r = R0 + c*DR
	r := pl.p.R0 + float64(c)*pl.p.DR
	return cmul(m, v, expi(m, float32(pl.k*r)))
}

// mergePixel computes (and charges) one element-combining output (paper
// eq. 5) for merge s (children at stage s): parent j, beam angle theta,
// range bin bi. Child samples are fetched through sample, which lets the
// caller choose local-bank or external storage.
func (pl *ffbpPlan) mergePixel(m machine.Machine, s, j int, theta float64, bi int,
	sample func(child int, g geom.PolarGrid, r, th float64) complex64) complex64 {
	pg := pl.grids[s+1][j]
	m.FMA(1) // r = R0 + bi*DR
	r := pg.Range(bi)
	l := pl.stages[s][2*j].Length
	r1, th1, r2, th2 := childCoords(m, r, theta, l)
	g0 := pl.grids[s][2*j]
	g1 := pl.grids[s][2*j+1]
	v1 := sample(0, g0, r1, th1)
	v2 := sample(1, g1, r2, th2)
	return cadd(m, v1, v2)
}

// extract copies a packed stage buffer's single remaining image into a
// mat.C (rows = beams).
func (pl *ffbpPlan) extract(buf *machine.BufC) *mat.C {
	nb := pl.p.NumBins
	img := mat.NewC(pl.p.NumPulses, nb)
	for bt := 0; bt < pl.p.NumPulses; bt++ {
		copy(img.Row(bt), buf.Data[bt*nb:(bt+1)*nb])
	}
	return img
}

// SeqFFBP runs the complete fast factorized back-projection sequentially
// on machine m, with the radar data and all subaperture images placed in
// mem — the model's main memory: external SDRAM for a single Epiphany core
// (the paper's sequential Epiphany implementation keeps the image data
// off-chip) or cached DRAM for the Intel reference. It returns the final
// image, bit-identical to ffbp.Image with nearest-neighbour interpolation.
func SeqFFBP(m machine.Machine, mem machine.Alloc, data *mat.C, p sar.Params, box geom.SceneBox) (*mat.C, geom.PolarGrid, error) {
	pl, err := newFFBPPlan(p, box, data)
	if err != nil {
		return nil, geom.PolarGrid{}, err
	}
	total := p.NumPulses * p.NumBins
	dataBuf, err := machine.NewBufC(mem, total)
	if err != nil {
		return nil, geom.PolarGrid{}, err
	}
	cur, err := machine.NewBufC(mem, total)
	if err != nil {
		return nil, geom.PolarGrid{}, err
	}
	next, err := machine.NewBufC(mem, total)
	if err != nil {
		return nil, geom.PolarGrid{}, err
	}
	for i := 0; i < p.NumPulses; i++ {
		copy(dataBuf.Data[i*p.NumBins:(i+1)*p.NumBins], data.Row(i))
	}

	// Stage 0: carrier removal.
	for i := 0; i < p.NumPulses; i++ {
		for c := 0; c < p.NumBins; c++ {
			m.IOp(2)
			v := dataBuf.Load(m, i*p.NumBins+c)
			cur.Store(m, i*p.NumBins+c, pl.stage0Pixel(m, v, c))
		}
	}

	// Merge iterations.
	nb := p.NumBins
	for s := 0; s < pl.numMerges(); s++ {
		parents := pl.stages[s+1]
		ntheta := pl.grids[s+1][0].NTheta
		for j := range parents {
			for bt := 0; bt < ntheta; bt++ {
				chargeBeamSetup(m)
				theta := pl.grids[s+1][j].Theta(bt)
				outBase := pl.imageOff(s+1, j) + bt*nb
				for bi := 0; bi < nb; bi++ {
					v := pl.mergePixel(m, s, j, theta, bi,
						func(child int, g geom.PolarGrid, r, th float64) complex64 {
							return sampleNN(m, cur, pl.imageOff(s, 2*j+child), g, r, th)
						})
					next.Store(m, outBase+bi, v)
				}
			}
		}
		cur, next = next, cur
	}
	return pl.extract(cur), pl.grids[len(pl.grids)-1][0], nil
}

// ParFFBP runs the paper's parallel SPMD FFBP implementation on nCores
// cores of the simulated Epiphany chip (0 = all): the resulting image is
// partitioned into independent slices computed in parallel (paper Fig. 6).
// During the first merge iteration each core prefetches the two
// contributing pulses of each of its subaperture pairs into the two upper
// local-memory banks by DMA (paper: 16,016 bytes for two 1001-bin pulses);
// in later iterations the contributing data no longer fits locally and is
// read directly from external memory, while results are always written
// back to SDRAM with posted writes. Barriers separate merge iterations.
//
// Under a fault plan with halted cores the kernel degrades gracefully:
// work is assigned per logical slot (the fault-free partition is
// unchanged), and a halted core's slots move to its nearest live XY
// neighbor via Chip.Assignments — the run completes with quantified
// slowdown and a bit-identical image.
//
// The returned image is bit-identical to SeqFFBP on the same input.
func ParFFBP(ch *emu.Chip, nCores int, data *mat.C, p sar.Params, box geom.SceneBox) (*mat.C, geom.PolarGrid, error) {
	pl, err := newFFBPPlan(p, box, data)
	if err != nil {
		return nil, geom.PolarGrid{}, err
	}
	if nCores == 0 {
		nCores = len(ch.Cores)
	}
	assign, err := ch.Assignments(nCores)
	if err != nil {
		return nil, geom.PolarGrid{}, fmt.Errorf("kernels: ffbp cannot degrade: %w", err)
	}
	slotsByCore := make(map[int][]int, nCores)
	for slot, core := range assign {
		slotsByCore[core] = append(slotsByCore[core], slot)
	}
	if p.NumBins*8 > ch.P.BankBytes {
		return nil, geom.PolarGrid{}, fmt.Errorf("kernels: a %d-bin pulse does not fit one %d-byte local bank",
			p.NumBins, ch.P.BankBytes)
	}
	total := p.NumPulses * p.NumBins
	dataBuf, err := machine.NewBufC(ch.Ext(), total)
	if err != nil {
		return nil, geom.PolarGrid{}, err
	}
	cur, err := machine.NewBufC(ch.Ext(), total)
	if err != nil {
		return nil, geom.PolarGrid{}, err
	}
	next, err := machine.NewBufC(ch.Ext(), total)
	if err != nil {
		return nil, geom.PolarGrid{}, err
	}
	for i := 0; i < p.NumPulses; i++ {
		copy(dataBuf.Data[i*p.NumBins:(i+1)*p.NumBins], data.Row(i))
	}

	nb := p.NumBins
	var kernelErr error
	ch.Run(nCores, func(c *emu.Core) {
		// The logical work slots this core executes: its own, plus any it
		// took over from a halted neighbor. Every phase loops over the
		// slots between the same barriers, so the barrier structure — and,
		// with the identity assignment, the whole run — is unchanged.
		slots := slotsByCore[c.ID]

		// Per-core local buffers: the two upper data banks (banks 2 and 3).
		bankA, errA := machine.NewBufC(c.Bank(2), nb)
		bankB, errB := machine.NewBufC(c.Bank(3), nb)
		if errA != nil || errB != nil {
			kernelErr = fmt.Errorf("kernels: local bank allocation failed")
			return
		}

		// Stage 0: each slot carrier-removes its slice of pulses, double-
		// buffering the DMA prefetch across the two banks.
		for _, slot := range slots {
			rows := mat.Partition(p.NumPulses, nCores)[slot]
			banks := [2]*machine.BufC{bankA, bankB}
			var dmas [2]emu.DMA
			for i := rows.Lo; i < rows.Hi; i++ {
				b := (i - rows.Lo) % 2
				if i == rows.Lo {
					dmas[b] = c.DMACopyC(banks[b], 0, dataBuf, i*nb, nb)
				}
				c.DMAWait(dmas[b])
				if i+1 < rows.Hi {
					nb2 := (i + 1 - rows.Lo) % 2
					dmas[nb2] = c.DMACopyC(banks[nb2], 0, dataBuf, (i+1)*nb, nb)
				}
				for col := 0; col < nb; col++ {
					c.IOp(2)
					v := banks[b].Load(c, col)
					cur.Store(c, i*nb+col, pl.stage0Pixel(c, v, col))
				}
			}
		}
		c.Barrier()
		if pl.numMerges() == 0 {
			return
		}

		// Merge iteration 1: children are single-pulse images that fit the
		// two upper banks, so prefetch both by DMA and compute locally.
		for _, slot := range slots {
			s := 0
			parents := mat.Partition(len(pl.stages[1]), nCores)[slot]
			for j := parents.Lo; j < parents.Hi; j++ {
				d0 := c.DMACopyC(bankA, 0, cur, pl.imageOff(0, 2*j), nb)
				d1 := c.DMACopyC(bankB, 0, cur, pl.imageOff(0, 2*j+1), nb)
				c.DMAWait(d0)
				c.DMAWait(d1)
				locals := [2]*machine.BufC{bankA, bankB}
				for bt := 0; bt < 2; bt++ {
					chargeBeamSetup(c)
					theta := pl.grids[1][j].Theta(bt)
					outBase := pl.imageOff(1, j) + bt*nb
					for bi := 0; bi < nb; bi++ {
						v := pl.mergePixel(c, s, j, theta, bi,
							func(child int, g geom.PolarGrid, r, th float64) complex64 {
								return sampleNN(c, locals[child], 0, g, r, th)
							})
						next.Store(c, outBase+bi, v)
					}
				}
			}
		}
		c.Barrier()
		curL, nextL := next, cur

		// Later merge iterations: contributing data is read directly from
		// external memory (the paper's "in the later iterations it still
		// requires contributing data to be read from the external memory").
		for s := 1; s < pl.numMerges(); s++ {
			ntheta := pl.grids[s+1][0].NTheta
			for _, slot := range slots {
				units := mat.Partition(len(pl.stages[s+1])*ntheta, nCores)[slot]
				for u := units.Lo; u < units.Hi; u++ {
					j := u / ntheta
					bt := u % ntheta
					chargeBeamSetup(c)
					theta := pl.grids[s+1][j].Theta(bt)
					outBase := pl.imageOff(s+1, j) + bt*nb
					for bi := 0; bi < nb; bi++ {
						v := pl.mergePixel(c, s, j, theta, bi,
							func(child int, g geom.PolarGrid, r, th float64) complex64 {
								return sampleNN(c, curL, pl.imageOff(s, 2*j+child), g, r, th)
							})
						nextL.Store(c, outBase+bi, v)
					}
				}
			}
			c.Barrier()
			curL, nextL = nextL, curL
		}
	})
	if kernelErr != nil {
		return nil, geom.PolarGrid{}, kernelErr
	}

	// Stage 0 wrote cur, merge 1 wrote next, and every later merge
	// alternates: after an odd number of merges the image is in next.
	final := cur
	if pl.numMerges()%2 == 1 {
		final = next
	}
	return pl.extract(final), pl.grids[len(pl.grids)-1][0], nil
}
