package kernels

import (
	"testing"

	"sarmany/internal/emu"
	"sarmany/internal/gbp"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
	"sarmany/internal/refcpu"
	"sarmany/internal/sar"
)

func TestSeqGBPMatchesHost(t *testing.T) {
	p, box, data := testSetup()
	full := geom.Aperture{Center: 0, Length: p.ApertureLength()}
	grid := box.GridFor(full, p.NumPulses, p.NumBins, p.R0, p.DR)

	cpu := refcpu.New(refcpu.I7M620())
	img, err := SeqGBP(cpu, cpu.Mem(), data, p, grid)
	if err != nil {
		t.Fatal(err)
	}
	want := gbp.ImageRef(data, p, grid, gbp.Config{Interp: interp.Nearest, Workers: 1})
	if !img.Equal(want) {
		t.Errorf("kernel GBP differs from host (max diff %v)", img.MaxAbsDiff(want))
	}
	if cpu.Cycles() <= 0 {
		t.Error("no cycles charged")
	}
}

func TestGBPSlowerThanFFBP(t *testing.T) {
	// The paper's motivation for FFBP: "the FFBP algorithm is much faster
	// than the GBP algorithm". On the same machine model, the modeled GBP
	// time must exceed FFBP's by a large factor (O(N) vs O(log N) pulses
	// per pixel: 64 vs 6 here). Use dense (noisy) data so GBP's
	// skip-zero-contributions optimization reflects a real scene.
	p, box, data := testSetup()
	sar.AddNoise(data, 0.1, 5)
	full := geom.Aperture{Center: 0, Length: p.ApertureLength()}
	grid := box.GridFor(full, p.NumPulses, p.NumBins, p.R0, p.DR)

	cpuG := refcpu.New(refcpu.I7M620())
	if _, err := SeqGBP(cpuG, cpuG.Mem(), data, p, grid); err != nil {
		t.Fatal(err)
	}
	cpuF := refcpu.New(refcpu.I7M620())
	if _, _, err := SeqFFBP(cpuF, cpuF.Mem(), data, p, box); err != nil {
		t.Fatal(err)
	}
	ratio := cpuG.Seconds() / cpuF.Seconds()
	if ratio < 2 {
		t.Errorf("GBP only %.2fx slower than FFBP; expected a large factor", ratio)
	}
}

func TestSeqGBPOnEpiphanyCore(t *testing.T) {
	p, box, data := testSetup()
	full := geom.Aperture{Center: 0, Length: p.ApertureLength()}
	grid := box.GridFor(full, p.NumPulses, p.NumBins, p.R0, p.DR)
	ch := emu.New(emu.E16G3())
	img, err := SeqGBP(ch.Cores[0], ch.Ext(), data, p, grid)
	if err != nil {
		t.Fatal(err)
	}
	want := gbp.ImageRef(data, p, grid, gbp.Config{Interp: interp.Nearest, Workers: 1})
	if !img.Equal(want) {
		t.Error("Epiphany GBP image differs from host")
	}
}

func TestSeqGBPRejectsBadInput(t *testing.T) {
	p, _, _ := testSetup()
	cpu := refcpu.New(refcpu.I7M620())
	grid := geom.NewPolarGrid(10, 500, 1, 4, 1.4, 1.7)
	if _, err := SeqGBP(cpu, cpu.Mem(), mat.NewC(2, 2), p, grid); err == nil {
		t.Error("dimension mismatch accepted")
	}
	bad := p
	bad.DR = -1
	if _, err := SeqGBP(cpu, cpu.Mem(), mat.NewC(p.NumPulses, p.NumBins), bad, grid); err == nil {
		t.Error("invalid params accepted")
	}
}
