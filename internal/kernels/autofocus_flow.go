package kernels

import (
	"fmt"

	"sarmany/internal/autofocus"
	"sarmany/internal/emu"
	"sarmany/internal/flow"
	"sarmany/internal/machine"
)

// FlowAutofocus is the paper's 13-core autofocus pipeline expressed as a
// flow.Graph instead of hand-written per-core programs — the
// demonstration of Sec. VI-B's programmability argument: the MPMD mapping
// whose manual synchronization "reduces productivity" becomes a
// declarative graph, with the channel wiring and synchronization
// generated. Scores are bit-identical to ParAutofocus (and therefore to
// SeqAutofocus); the timing model underneath is the same chip.
func FlowAutofocus(ch *emu.Chip, pairs []BlockPair, shifts []autofocus.Shift) ([][]float64, error) {
	if len(pairs) == 0 || len(shifts) == 0 {
		return nil, fmt.Errorf("kernels: autofocus needs at least one pair and one shift")
	}
	if len(ch.Cores) < PipelineCores {
		return nil, fmt.Errorf("kernels: need %d cores, chip has %d", PipelineCores, len(ch.Cores))
	}
	buf, err := packPairs(ch.Ext(), pairs)
	if err != nil {
		return nil, err
	}
	scores := make([][]float64, len(pairs))
	for i := range scores {
		scores[i] = make([]float64, len(shifts))
	}

	g := flow.NewGraph()
	blockName := func(isMinus bool) string {
		if isMinus {
			return "minus"
		}
		return "plus"
	}

	// Range interpolators: the head core of each chain DMAs the block from
	// SDRAM and forwards it; the others receive and forward.
	rangeProc := func(isMinus bool, w int) flow.Proc {
		return func(c *flow.Ctx) {
			blockSel := 0
			if !isMinus {
				blockSel = 1
			}
			var local *machine.BufC
			if w == 0 {
				var err error
				if local, err = machine.NewBufC(c.Core.Bank(2), blockPx); err != nil {
					panic(err)
				}
			}
			for i := range pairs {
				var blk autofocus.Block
				if w == 0 {
					d := c.Core.DMACopyC(local, 0, buf, (2*i+blockSel)*blockPx, blockPx)
					c.Core.DMAWait(d)
					c.Out("fwd").Send(local.Data)
					blk = loadBlock(c.Core, local, 0)
				} else {
					vals := c.In("blk").Recv()
					if w == 1 {
						c.Out("fwd").Send(vals)
					}
					for r := 0; r < autofocus.BlockSize; r++ {
						copy(blk[r][:], vals[r*autofocus.BlockSize:(r+1)*autofocus.BlockSize])
					}
				}
				for _, s := range shifts {
					if isMinus {
						s = autofocus.Shift{}
					}
					var vals [autofocus.BlockSize]complex64
					for r := 0; r < autofocus.BlockSize; r++ {
						c.Core.FMA(1)
						off := s.DRange + s.Tilt*float64(r)
						var taps [4]complex64
						copy(taps[:], blk[r][w:w+4])
						c.Core.IOp(2)
						vals[r] = neville4(c.Core, taps, float32(1.5+off))
					}
					c.Out("rng").Send(vals[:])
				}
			}
		}
	}
	beamProc := func(isMinus bool) flow.Proc {
		return func(c *flow.Ctx) {
			for range pairs {
				for si := range shifts {
					vals := c.In("rng").Recv()
					s := autofocus.Shift{}
					if !isMinus {
						s = shifts[si]
					}
					var col [3]complex64
					for i := 0; i < interpN; i++ {
						taps := [4]complex64{vals[i], vals[i+1], vals[i+2], vals[i+3]}
						c.Core.IOp(2)
						col[i] = neville4(c.Core, taps, float32(1.5+s.DBeam))
					}
					c.Out("beam").Send(col[:])
				}
			}
		}
	}

	for _, isMinus := range []bool{true, false} {
		b := blockName(isMinus)
		for w := 0; w < 3; w++ {
			if err := g.Node(fmt.Sprintf("range-%s-%d", b, w), rangeProc(isMinus, w)); err != nil {
				return nil, err
			}
		}
		for w := 0; w < 3; w++ {
			if err := g.Node(fmt.Sprintf("beam-%s-%d", b, w), beamProc(isMinus)); err != nil {
				return nil, err
			}
		}
	}
	if err := g.Node("corr", func(c *flow.Ctx) {
		res, err := machine.NewBufF(ch.Ext(), len(pairs)*len(shifts))
		if err != nil {
			panic(err)
		}
		ports := [6]string{"m0", "m1", "m2", "p0", "p1", "p2"}
		for i := range pairs {
			for si := range shifts {
				var a, b autofocus.Interpolated
				for w := 0; w < 3; w++ {
					av := c.In(ports[w]).Recv()
					bv := c.In(ports[3+w]).Recv()
					for r := 0; r < interpN; r++ {
						a[r][w] = av[r]
						b[r][w] = bv[r]
					}
				}
				sum := correlate(c.Core, &a, &b)
				scores[i][si] = sum
				res.Store(c.Core, i*len(shifts)+si, float32(sum))
			}
		}
	}); err != nil {
		return nil, err
	}

	// Wiring: forwarding chains, range->beam, beam->corr.
	for bi, b := range []string{"minus", "plus"} {
		if err := g.Connect("range-"+b+"-0", "fwd", "range-"+b+"-1", "blk", 2); err != nil {
			return nil, err
		}
		if err := g.Connect("range-"+b+"-1", "fwd", "range-"+b+"-2", "blk", 2); err != nil {
			return nil, err
		}
		for w := 0; w < 3; w++ {
			if err := g.Connect(fmt.Sprintf("range-%s-%d", b, w), "rng",
				fmt.Sprintf("beam-%s-%d", b, w), "rng", 4); err != nil {
				return nil, err
			}
			port := fmt.Sprintf("%c%d", "mp"[bi], w)
			if err := g.Connect(fmt.Sprintf("beam-%s-%d", b, w), "beam", "corr", port, 4); err != nil {
				return nil, err
			}
		}
	}

	// Placement mirrors ParAutofocus's core assignment so the two can be
	// compared like for like: ranges 0-2/6-8, beams 3-5/9-11, corr 12.
	placement := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if err := g.Run(ch, placement); err != nil {
		return nil, err
	}
	return scores, nil
}
