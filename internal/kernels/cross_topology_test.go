package kernels

import (
	"testing"

	"sarmany/internal/autofocus"
	"sarmany/internal/emu"
)

// TestKernelsBitIdenticalAcrossTopologies is the cross-topology identity
// gate: ParFFBP images and ParAutofocus scores computed on the 4x4
// E16G3, the 8x8 scale-up, a rectangular mesh and a 2x2 eLink-bridged
// chip array must be bit-identical. Topology moves work and changes
// timing; it must never change a single output bit, because the slot
// partition — not the core layout — defines the arithmetic.
func TestKernelsBitIdenticalAcrossTopologies(t *testing.T) {
	p, box, data := testSetup()
	pairs := testPairs(4)
	shifts := autofocus.RangeSweep(-1.5, 1.5, 11)

	topos := []struct {
		name  string
		p     emu.Params
		cores int
	}{
		{"4x4", emu.E16G3(), 16},
		{"8x8", emu.E64(), 64},
		{"2x8", emu.E16G3().WithMesh(2, 8), 16},
		{"1x2chips-of-4x4", emu.E16G3().WithChips(1, 2), 32},
		{"2x2chips-of-4x4", emu.E16G3().WithChips(2, 2), 64},
	}

	baseCh := emu.New(topos[0].p)
	baseImg, baseGrid, err := ParFFBP(baseCh, topos[0].cores, data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	baseScores, err := ParAutofocus(emu.New(topos[0].p), pairs, shifts)
	if err != nil {
		t.Fatal(err)
	}

	for _, topo := range topos[1:] {
		t.Run(topo.name, func(t *testing.T) {
			ch := emu.New(topo.p)
			img, grid, err := ParFFBP(ch, topo.cores, data, p, box)
			if err != nil {
				t.Fatal(err)
			}
			if grid != baseGrid {
				t.Fatalf("image grid differs: %+v vs %+v", grid, baseGrid)
			}
			if !img.Equal(baseImg) {
				t.Errorf("FFBP image differs from the 4x4 baseline (max diff %v)",
					img.MaxAbsDiff(baseImg))
			}
			scores, err := ParAutofocus(emu.New(topo.p), pairs, shifts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range baseScores {
				for j := range baseScores[i] {
					if scores[i][j] != baseScores[i][j] {
						t.Errorf("autofocus score [%d][%d] = %v, baseline %v",
							i, j, scores[i][j], baseScores[i][j])
					}
				}
			}
		})
	}
}
