// Package kernels contains the paper's two case-study implementations
// mapped onto the simulated machines: the SPMD fast-factorized
// back-projection (Sec. V-B) and the MPMD streaming autofocus criterion
// calculation (Sec. V-C), each in a sequential variant (runs on any
// machine.Machine — the Intel reference model or a single Epiphany core)
// and a parallel variant (runs on an emu.Chip).
//
// Kernels perform the real arithmetic — producing images and criterion
// values bit-identical to the host implementations in packages ffbp and
// autofocus — while charging their machine for every modeled operation.
// The operation charges follow the paper's described implementation: the
// cosine-theorem index generation with fused multiply-adds and the
// simplified square root, nearest-neighbour interpolation for FFBP, and
// Neville cubic interpolation for autofocus.
package kernels

import (
	"math"

	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/machine"
)

// chargeBeamSetup charges the per-beam hoisted work of the FFBP inner
// loops: the sincos of the output beam angle and the derived loop
// constants (paper: the optimization of using scalar variables to maximize
// register-file use hoists these out of the pixel loop).
func chargeBeamSetup(m machine.Machine) {
	m.Trig(2) // sin(theta), cos(theta)
	m.FMA(4)  // beam angle, x/y step constants
	m.IOp(4)  // row pointers
}

// childCoords evaluates paper eqs. 1-4 for one output pixel and charges
// the per-pixel cost of the cosine-theorem index generation: two fused
// multiply-add chains and square roots for the ranges (eqs. 1-2, with the
// paper's fast software square root), and a divide plus inverse-cosine
// each for the angles (eqs. 3-4). The per-beam trigonometry is hoisted by
// chargeBeamSetup.
func childCoords(m machine.Machine, r, theta, l float64) (r1, th1, r2, th2 float64) {
	m.FMA(10)
	m.Sqrt(2)
	m.Div(2)
	m.Trig(2)
	return geom.ChildCoords(r, theta, l)
}

// sampleNN performs the nearest-neighbour interpolation lookup of one
// child-subaperture sample: index generation from the (range, angle)
// coordinates, the out-of-range test (the paper's "skip the additions with
// zero when the indices are out of range"), and the 64-bit load of the
// complex pixel. img holds the child image row-major on grid g, starting
// at element base. The arithmetic matches interp.At2(..., interp.Nearest)
// exactly.
func sampleNN(m machine.Machine, img *machine.BufC, base int, g geom.PolarGrid, r, th float64) complex64 {
	m.FMA(2)  // two fractional index computations
	m.Flop(2) // two rounds
	m.IOp(4)  // bounds tests and address arithmetic
	ti := int(math.Round(g.ThetaIndex(th)))
	ri := int(math.Round(g.RangeIndex(r)))
	if ti < 0 || ti >= g.NTheta || ri < 0 || ri >= g.NR {
		return 0
	}
	return img.Load(m, base+ti*g.NR+ri)
}

// neville4 evaluates the four-tap Neville cubic interpolation kernel on
// values already held in registers, charging its FPU work: six first-order
// combinations, each a complex scale-and-accumulate (paper ref. [16]; the
// autofocus interpolators run this in both the range and beam stages).
func neville4(m machine.Machine, s [4]complex64, t float32) complex64 {
	m.FMA(24) // 6 nev steps x 4 scalar FMAs (complex lerp)
	m.Flop(6) // 6 coefficient computations u*invW
	return interp.Neville4(s, t)
}

// expi charges and evaluates exp(i*phi) — one software sincos.
func expi(m machine.Machine, phi float32) complex64 {
	m.Trig(1)
	s, c := math.Sincos(float64(phi))
	return complex(float32(c), float32(s))
}

// cmul charges and evaluates a complex multiply (four scalar FMAs on the
// Epiphany; two multiplies and two multiply-adds elsewhere).
func cmul(m machine.Machine, a, b complex64) complex64 {
	m.FMA(4)
	return a * b
}

// cadd charges and evaluates a complex add — the element combining of
// paper eq. 5.
func cadd(m machine.Machine, a, b complex64) complex64 {
	m.Flop(2)
	return a + b
}

// abs2 charges and evaluates |z|^2 (a multiply and a fused multiply-add).
func abs2(m machine.Machine, z complex64) float32 {
	m.FMA(2)
	re, im := real(z), imag(z)
	return re*re + im*im
}
