package kernels

import (
	"math"
	"testing"

	"sarmany/internal/autofocus"
	"sarmany/internal/emu"
	"sarmany/internal/ffbp"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
	"sarmany/internal/refcpu"
	"sarmany/internal/sar"
)

// kernelTopologies are the chip configurations the parallel-kernel tests
// sweep: the paper's 4x4 E16G3, the 8x8 single-chip scale-up, and a 2x2
// eLink-bridged array of E16G3 chips. The kernels must produce identical
// outputs on all of them — topology only changes timing.
var kernelTopologies = []struct {
	name  string
	p     emu.Params
	cores int
}{
	{"4x4", emu.E16G3(), 16},
	{"8x8", emu.E64(), 64},
	{"2x2chips-of-4x4", emu.E16G3().WithChips(2, 2), 64},
}

func testSetup() (sar.Params, geom.SceneBox, *mat.C) {
	p := sar.DefaultParams()
	p.NumPulses = 64
	p.NumBins = 161
	p.R0 = 500
	box := geom.SceneBox{UMin: -20, UMax: 20, YMin: 510, YMax: 570, ThetaPad: 0.05}
	data := sar.Simulate(p, []sar.Target{{U: 5, Y: 540, Amp: 1}, {U: -10, Y: 555, Amp: 0.7}}, nil)
	return p, box, data
}

func TestSeqFFBPMatchesHostOnIntel(t *testing.T) {
	p, box, data := testSetup()
	cpu := refcpu.New(refcpu.I7M620())
	img, grid, err := SeqFFBP(cpu, cpu.Mem(), data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	want, wantGrid, err := ffbp.Image(data, p, box, ffbp.Config{Interp: interp.Nearest, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if grid != wantGrid {
		t.Fatalf("grid mismatch: %+v vs %+v", grid, wantGrid)
	}
	if !img.Equal(want) {
		t.Errorf("kernel image differs from host FFBP (max diff %v)", img.MaxAbsDiff(want))
	}
	if cpu.Cycles() <= 0 {
		t.Error("no cycles charged")
	}
}

func TestSeqFFBPMatchesHostOnEpiphanyCore(t *testing.T) {
	p, box, data := testSetup()
	ch := emu.New(emu.E16G3())
	core := ch.Cores[0]
	img, _, err := SeqFFBP(core, ch.Ext(), data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ffbp.Image(data, p, box, ffbp.Config{Interp: interp.Nearest, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(want) {
		t.Errorf("kernel image differs from host FFBP (max diff %v)", img.MaxAbsDiff(want))
	}
	if core.Stats.ExtReads == 0 || core.Stats.ExtWrites == 0 {
		t.Error("sequential Epiphany FFBP should hit external memory")
	}
}

func TestParFFBPMatchesSeq(t *testing.T) {
	p, box, data := testSetup()
	chSeq := emu.New(emu.E16G3())
	seqImg, _, err := SeqFFBP(chSeq.Cores[0], chSeq.Ext(), data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	seqT := chSeq.Cores[0].Cycles()
	for _, topo := range kernelTopologies {
		t.Run(topo.name, func(t *testing.T) {
			chPar := emu.New(topo.p)
			parImg, _, err := ParFFBP(chPar, topo.cores, data, p, box)
			if err != nil {
				t.Fatal(err)
			}
			if !parImg.Equal(seqImg) {
				t.Errorf("parallel image differs from sequential (max diff %v)", parImg.MaxAbsDiff(seqImg))
			}
			// The parallel implementation must actually be faster.
			if parT := chPar.MaxCycles(); parT >= seqT {
				t.Errorf("parallel (%v cycles) not faster than sequential (%v)", parT, seqT)
			}
			// And it must have used DMA prefetch and barriers.
			st := chPar.TotalStats()
			if st.DMATransfers == 0 || st.BarrierWaits == 0 {
				t.Errorf("parallel stats missing DMA/barriers: %+v", st)
			}
		})
	}
}

func TestParFFBPDeterministic(t *testing.T) {
	p, box, data := testSetup()
	for _, topo := range kernelTopologies {
		t.Run(topo.name, func(t *testing.T) {
			run := func() float64 {
				ch := emu.New(topo.p)
				if _, _, err := ParFFBP(ch, topo.cores, data, p, box); err != nil {
					t.Fatal(err)
				}
				return ch.MaxCycles()
			}
			first := run()
			for i := 0; i < 5; i++ {
				if got := run(); got != first {
					t.Fatalf("run %d: %v cycles, first %v", i, got, first)
				}
			}
		})
	}
}

func TestParFFBPWorksOnFewerCores(t *testing.T) {
	p, box, data := testSetup()
	ch4 := emu.New(emu.E16G3())
	img4, _, err := ParFFBP(ch4, 4, data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	ch16 := emu.New(emu.E16G3())
	img16, _, err := ParFFBP(ch16, 16, data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	if !img4.Equal(img16) {
		t.Error("4-core and 16-core images differ")
	}
	if ch16.MaxCycles() >= ch4.MaxCycles() {
		t.Errorf("16 cores (%v) not faster than 4 (%v)", ch16.MaxCycles(), ch4.MaxCycles())
	}
}

func TestFFBPRejectsBadInput(t *testing.T) {
	p, box, data := testSetup()
	cpu := refcpu.New(refcpu.I7M620())
	p2 := p
	p2.NumPulses = 60 // not a power of two
	if _, _, err := SeqFFBP(cpu, cpu.Mem(), data, p2, box); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, _, err := SeqFFBP(cpu, cpu.Mem(), mat.NewC(2, 2), p, box); err == nil {
		t.Error("dimension mismatch accepted")
	}
	pWide := p
	pWide.NumBins = 2000 // does not fit a local bank
	ch := emu.New(emu.E16G3())
	if _, _, err := ParFFBP(ch, 16, mat.NewC(pWide.NumPulses, 2000), pWide, box); err == nil {
		t.Error("oversized pulse accepted by parallel kernel")
	}
}

// testPairs builds block pairs with smooth content so criterion values are
// well-conditioned.
func testPairs(n int) []BlockPair {
	out := make([]BlockPair, n)
	for i := range out {
		var m, p autofocus.Block
		for r := 0; r < autofocus.BlockSize; r++ {
			for c := 0; c < autofocus.BlockSize; c++ {
				dr := float64(r) - 2.5
				dc := float64(c) - 2.3 - 0.1*float64(i%3)
				a := float32(math.Exp(-(dr*dr + dc*dc) / 3))
				m[r][c] = complex(a, a/2)
				dc += 0.4
				b := float32(math.Exp(-(dr*dr + dc*dc) / 3))
				p[r][c] = complex(b, -b/3)
			}
		}
		out[i] = BlockPair{Minus: m, Plus: p}
	}
	return out
}

func TestSeqAutofocusMatchesHost(t *testing.T) {
	pairs := testPairs(3)
	shifts := autofocus.RangeSweep(-1, 1, 9)
	cpu := refcpu.New(refcpu.I7M620())
	scores, err := SeqAutofocus(cpu, cpu.Mem(), pairs, shifts)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 || len(scores[0]) != 9 {
		t.Fatalf("scores shape %dx%d", len(scores), len(scores[0]))
	}
	for i, pr := range pairs {
		for j, s := range shifts {
			want := autofocus.Criterion(&pr.Minus, &pr.Plus, s)
			if scores[i][j] != want {
				t.Errorf("pair %d shift %d: %v, host %v", i, j, scores[i][j], want)
			}
		}
	}
	if cpu.Cycles() <= 0 {
		t.Error("no cycles charged")
	}
}

func TestParAutofocusMatchesSeq(t *testing.T) {
	pairs := testPairs(4)
	shifts := autofocus.RangeSweep(-1.5, 1.5, 11)
	chSeq := emu.New(emu.E16G3())
	seqScores, err := SeqAutofocus(chSeq.Cores[0], chSeq.Ext(), pairs, shifts)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range kernelTopologies {
		t.Run(topo.name, func(t *testing.T) {
			chPar := emu.New(topo.p)
			parScores, err := ParAutofocus(chPar, pairs, shifts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range seqScores {
				for j := range seqScores[i] {
					if parScores[i][j] != seqScores[i][j] {
						t.Errorf("pair %d shift %d: par %v seq %v", i, j, parScores[i][j], seqScores[i][j])
					}
				}
			}
		})
	}
}

func TestParAutofocusPipelineSpeedup(t *testing.T) {
	// With a long stream, the 13-core pipeline sustains a large speedup
	// over one core (paper: 10.9x).
	pairs := testPairs(8)
	shifts := autofocus.RangeSweep(-1, 1, 16)
	chSeq := emu.New(emu.E16G3())
	if _, err := SeqAutofocus(chSeq.Cores[0], chSeq.Ext(), pairs, shifts); err != nil {
		t.Fatal(err)
	}
	chPar := emu.New(emu.E16G3())
	if _, err := ParAutofocus(chPar, pairs, shifts); err != nil {
		t.Fatal(err)
	}
	speedup := chSeq.Cores[0].Cycles() / chPar.MaxCycles()
	if speedup < 4 || speedup > 13 {
		t.Errorf("pipeline speedup %v outside [4, 13]", speedup)
	}
}

func TestParAutofocusDeterministic(t *testing.T) {
	pairs := testPairs(3)
	shifts := autofocus.RangeSweep(-1, 1, 7)
	for _, topo := range kernelTopologies {
		t.Run(topo.name, func(t *testing.T) {
			run := func() float64 {
				ch := emu.New(topo.p)
				if _, err := ParAutofocus(ch, pairs, shifts); err != nil {
					t.Fatal(err)
				}
				return ch.MaxCycles()
			}
			first := run()
			for i := 0; i < 5; i++ {
				if got := run(); got != first {
					t.Fatalf("run %d: %v cycles, first %v", i, got, first)
				}
			}
		})
	}
}

func TestAutofocusRejectsEmptyInput(t *testing.T) {
	cpu := refcpu.New(refcpu.I7M620())
	if _, err := SeqAutofocus(cpu, cpu.Mem(), nil, autofocus.RangeSweep(-1, 1, 3)); err == nil {
		t.Error("empty pairs accepted")
	}
	if _, err := SeqAutofocus(cpu, cpu.Mem(), testPairs(1), nil); err == nil {
		t.Error("empty shifts accepted")
	}
	ch := emu.New(emu.E16G3())
	if _, err := ParAutofocus(ch, nil, autofocus.RangeSweep(-1, 1, 3)); err == nil {
		t.Error("empty pairs accepted by parallel kernel")
	}
	small := emu.New(emu.E16G3().WithMesh(2, 2))
	if _, err := ParAutofocus(small, testPairs(1), autofocus.RangeSweep(-1, 1, 3)); err == nil {
		t.Error("too-small chip accepted")
	}
}
