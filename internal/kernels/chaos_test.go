package kernels

import (
	"reflect"
	"testing"

	"sarmany/internal/autofocus"
	"sarmany/internal/conform"
	"sarmany/internal/emu"
	"sarmany/internal/fault"
	"sarmany/internal/mat"
	"sarmany/internal/obs"
)

// ffbpChaosPlan degrades the 16-core FFBP run on every axis the kernel
// exercises: a dead core (its tile work remaps to a live neighbor), a
// derated core, a throttled SDRAM channel, and DMA timeouts. FFBP shares
// through the mesh rather than streaming links, so no link faults apply.
func ffbpChaosPlan() fault.Plan {
	return fault.Plan{
		Seed:     4242,
		Halts:    []int{5},
		Derates:  []fault.Derate{{Core: 2, Factor: 1.25}},
		ExtScale: 0.8,
		DMAs:     []fault.DMAFault{{Core: -1, Rate: 0.5, TimeoutCycles: 120, MaxRetries: 3}},
	}
}

// afChaosPlan degrades the autofocus pipeline: a dead pipeline core (the
// MPMD placement remaps it to a live neighbor) and flaky streaming links
// that force retransmission with exponential backoff.
func afChaosPlan() fault.Plan {
	return fault.Plan{
		Seed:  777,
		Halts: []int{7},
		Links: []fault.LinkFault{{From: -1, To: -1, Rate: 0.2, TimeoutCycles: 80, BackoffCycles: 8, MaxRetries: 3}},
	}
}

// tracedChip builds a chip of the given topology with a tracer attached
// (conform's trace checks need events) and an optional fault injector.
func tracedChip(p emu.Params, inj *fault.Injector) *emu.Chip {
	ch := emu.New(p)
	tr := obs.NewTracer(p.Clock)
	tr.SetCapacity(1 << 16)
	ch.SetTracer(tr)
	if inj != nil {
		ch.SetFaults(inj)
	}
	return ch
}

func runChaosFFBP(t *testing.T, inj *fault.Injector) (*emu.Chip, *mat.C) {
	t.Helper()
	p, box, data := testSetup()
	ch := tracedChip(emu.E16G3(), inj)
	img, _, err := ParFFBP(ch, 16, data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	return ch, img
}

// TestChaosFFBPGolden pins the golden contract of a degraded FFBP run:
// the image is bit-identical to the fault-free one (faults cost time,
// never correctness), reruns are bit-identical, the retry and remap
// counts are exactly the expected ones, the run is quantifiably slower,
// and the conformance checker still passes.
func TestChaosFFBPGolden(t *testing.T) {
	chClean, cleanImg := runChaosFFBP(t, nil)
	chFault, faultImg := runChaosFFBP(t, fault.MustCompile(ffbpChaosPlan()))
	chRerun, rerunImg := runChaosFFBP(t, fault.MustCompile(ffbpChaosPlan()))

	if !faultImg.Equal(cleanImg) {
		t.Errorf("degraded image differs from fault-free image (max diff %v): faults must cost time, not correctness",
			faultImg.MaxAbsDiff(cleanImg))
	}

	// Bit-identical rerun fingerprint: same virtual time, same aggregate
	// counters, same remap decisions.
	if !rerunImg.Equal(faultImg) {
		t.Error("rerun image differs from first faulted run")
	}
	if chRerun.MaxCycles() != chFault.MaxCycles() {
		t.Errorf("rerun cycles %v != first run cycles %v", chRerun.MaxCycles(), chFault.MaxCycles())
	}
	if !reflect.DeepEqual(chRerun.TotalStats(), chFault.TotalStats()) {
		t.Errorf("rerun stats differ:\n%+v\n%+v", chRerun.TotalStats(), chFault.TotalStats())
	}
	if !reflect.DeepEqual(chRerun.Remaps(), chFault.Remaps()) {
		t.Errorf("rerun remaps differ: %+v vs %+v", chRerun.Remaps(), chFault.Remaps())
	}

	// Exact golden counts for this seed and plan.
	tot := chFault.TotalStats()
	const wantDMARetries = 103
	if tot.DMARetries != wantDMARetries {
		t.Errorf("DMA retries = %d; want exactly %d", tot.DMARetries, wantDMARetries)
	}
	if tot.LinkRetries != 0 {
		t.Errorf("link retries = %d; want 0 (FFBP uses the mesh, not links)", tot.LinkRetries)
	}
	if tot.DerateCycles <= 0 {
		t.Errorf("derate cycles = %v; want > 0 (core 2 derated)", tot.DerateCycles)
	}
	remaps := chFault.Remaps()
	if len(remaps) != 1 || remaps[0].From != 5 {
		t.Fatalf("remaps = %+v; want exactly one remap off halted core 5", remaps)
	}
	const wantRemapTo = 1
	if remaps[0].To != wantRemapTo {
		t.Errorf("remap target = core %d; want nearest live neighbor %d", remaps[0].To, wantRemapTo)
	}

	// Quantified slowdown: the degraded run completes, later.
	if chFault.MaxCycles() <= chClean.MaxCycles() {
		t.Errorf("faulted run (%v cycles) not slower than clean (%v)",
			chFault.MaxCycles(), chClean.MaxCycles())
	}
	t.Logf("GOLDEN ffbp: dmaretries=%d dmaretrycycles=%v deratecycles=%v remaps=%+v slowdown=%.3f",
		tot.DMARetries, tot.DMARetryCycles, tot.DerateCycles, remaps,
		chFault.MaxCycles()/chClean.MaxCycles())

	if rep := conform.CheckAll(chFault); !rep.OK() {
		t.Fatal(rep.Err())
	}
}

// TestChaosFFBPAcrossTopologies runs the degraded-FFBP contract on the
// larger topologies — the 8x8 single chip and a 2x2 eLink-bridged array,
// the latter with a whole-chip derate on top of the core-level plan. The
// golden retry counts are topology-specific, so here the assertions are
// the invariants: faults cost time but never correctness, reruns are
// bit-identical, and the conformance checker stays green.
func TestChaosFFBPAcrossTopologies(t *testing.T) {
	p, box, data := testSetup()
	cases := []struct {
		name  string
		topo  emu.Params
		cores int
		plan  fault.Plan
	}{
		{"8x8", emu.E64(), 64, ffbpChaosPlan()},
		{"2x2chips-of-4x4", emu.E16G3().WithChips(2, 2), 64, func() fault.Plan {
			pl := ffbpChaosPlan()
			pl.ChipDerates = []fault.ChipDerate{{Chip: 3, Factor: 1.5}}
			return pl
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(inj *fault.Injector) (*emu.Chip, *mat.C) {
				ch := tracedChip(tc.topo, inj)
				img, _, err := ParFFBP(ch, tc.cores, data, p, box)
				if err != nil {
					t.Fatal(err)
				}
				return ch, img
			}
			chClean, cleanImg := run(nil)
			chFault, faultImg := run(fault.MustCompile(tc.plan))
			chRerun, rerunImg := run(fault.MustCompile(tc.plan))

			if !faultImg.Equal(cleanImg) {
				t.Errorf("degraded image differs from fault-free image (max diff %v)",
					faultImg.MaxAbsDiff(cleanImg))
			}
			if !rerunImg.Equal(faultImg) || chRerun.MaxCycles() != chFault.MaxCycles() ||
				!reflect.DeepEqual(chRerun.TotalStats(), chFault.TotalStats()) {
				t.Error("faulted rerun is not bit-identical")
			}
			if chFault.MaxCycles() <= chClean.MaxCycles() {
				t.Errorf("faulted run (%v cycles) not slower than clean (%v)",
					chFault.MaxCycles(), chClean.MaxCycles())
			}
			remaps := chFault.Remaps()
			if len(remaps) != 1 || remaps[0].From != 5 {
				t.Fatalf("remaps = %+v; want exactly one remap off halted core 5", remaps)
			}
			if rep := conform.CheckAll(chFault); !rep.OK() {
				t.Fatal(rep.Err())
			}
		})
	}
}

// TestChaosAutofocusGolden pins the same contract for the link-heavy
// MPMD autofocus pipeline under link faults and a dead core.
func TestChaosAutofocusGolden(t *testing.T) {
	pairs := testPairs(4)
	shifts := autofocus.RangeSweep(-1.5, 1.5, 11)
	run := func(inj *fault.Injector) (*emu.Chip, [][]float64) {
		ch := tracedChip(emu.E16G3(), inj)
		scores, err := ParAutofocus(ch, pairs, shifts)
		if err != nil {
			t.Fatal(err)
		}
		return ch, scores
	}
	chClean, cleanScores := run(nil)
	chFault, faultScores := run(fault.MustCompile(afChaosPlan()))
	chRerun, rerunScores := run(fault.MustCompile(afChaosPlan()))

	if !reflect.DeepEqual(cleanScores, faultScores) {
		t.Error("degraded pipeline produced different scores: faults must cost time, not correctness")
	}
	if !reflect.DeepEqual(rerunScores, faultScores) {
		t.Error("rerun scores differ from first faulted run")
	}
	if chRerun.MaxCycles() != chFault.MaxCycles() {
		t.Errorf("rerun cycles %v != first run cycles %v", chRerun.MaxCycles(), chFault.MaxCycles())
	}
	if !reflect.DeepEqual(chRerun.TotalStats(), chFault.TotalStats()) {
		t.Errorf("rerun stats differ:\n%+v\n%+v", chRerun.TotalStats(), chFault.TotalStats())
	}

	// Exact golden counts for seed 777: every link retry is a priced,
	// replayed decision, so the count is a fingerprint of the whole run.
	tot := chFault.TotalStats()
	const wantLinkRetries = 129
	const wantRetryBytes = 5400
	if tot.LinkRetries != wantLinkRetries {
		t.Errorf("link retries = %d; want exactly %d", tot.LinkRetries, wantLinkRetries)
	}
	if tot.RetryBytes != wantRetryBytes {
		t.Errorf("retry bytes = %d; want exactly %d", tot.RetryBytes, wantRetryBytes)
	}
	remaps := chFault.Remaps()
	if len(remaps) != 1 || remaps[0].From != 7 || remaps[0].To != 15 {
		t.Fatalf("remaps = %+v; want exactly {From:7 To:15}", remaps)
	}

	if chFault.MaxCycles() <= chClean.MaxCycles() {
		t.Errorf("faulted run (%v cycles) not slower than clean (%v)",
			chFault.MaxCycles(), chClean.MaxCycles())
	}
	t.Logf("GOLDEN autofocus: linkretries=%d retrybytes=%d retrycycles=%v remaps=%+v slowdown=%.3f",
		tot.LinkRetries, tot.RetryBytes, tot.LinkRetryCycles, remaps,
		chFault.MaxCycles()/chClean.MaxCycles())

	if rep := conform.CheckAll(chFault); !rep.OK() {
		t.Fatal(rep.Err())
	}
}
