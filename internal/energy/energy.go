// Package energy implements the paper's energy-efficiency accounting
// (Sec. VI-A). The paper estimates power from datasheet figures — 17.5 W
// for one active core of the Intel i7-M620 (half the 35 W package TDP) and
// 2 W for the Epiphany E16G3 at 1 GHz — and compares implementations by
// throughput per watt. This package reproduces that method.
package energy

import "fmt"

// Estimate describes one implementation's execution and energy figures.
type Estimate struct {
	// Seconds is the execution time of the workload.
	Seconds float64
	// Watts is the estimated power draw while executing.
	Watts float64
	// WorkUnits is the amount of work done (pixels for the paper's
	// throughput figures).
	WorkUnits float64
}

// Joules returns the energy consumed.
func (e Estimate) Joules() float64 { return e.Seconds * e.Watts }

// Throughput returns work units per second.
func (e Estimate) Throughput() float64 {
	if e.Seconds == 0 {
		return 0
	}
	return e.WorkUnits / e.Seconds
}

// PerWatt returns the paper's efficiency measure: throughput per watt
// (work units per second per watt).
func (e Estimate) PerWatt() float64 {
	if e.Watts == 0 {
		return 0
	}
	return e.Throughput() / e.Watts
}

// EfficiencyRatio returns how many times more energy-efficient a is than
// b, measured as throughput per watt (the paper's "78x" and "38x"
// figures). It returns 0 if b has no measurable efficiency.
func EfficiencyRatio(a, b Estimate) float64 {
	pb := b.PerWatt()
	if pb == 0 {
		return 0
	}
	return a.PerWatt() / pb
}

// Speedup returns b's execution time divided by a's: how many times
// faster a is.
func Speedup(a, b Estimate) float64 {
	if a.Seconds == 0 {
		return 0
	}
	return b.Seconds / a.Seconds
}

// String formats the estimate compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("%.1f ms @ %.1f W = %.3f J (%.0f units/s, %.0f units/s/W)",
		e.Seconds*1e3, e.Watts, e.Joules(), e.Throughput(), e.PerWatt())
}
