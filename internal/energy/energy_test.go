package energy

import (
	"math"
	"strings"
	"testing"
)

func TestJoulesAndThroughput(t *testing.T) {
	e := Estimate{Seconds: 2, Watts: 10, WorkUnits: 1000}
	if e.Joules() != 20 {
		t.Errorf("Joules = %v", e.Joules())
	}
	if e.Throughput() != 500 {
		t.Errorf("Throughput = %v", e.Throughput())
	}
	if e.PerWatt() != 50 {
		t.Errorf("PerWatt = %v", e.PerWatt())
	}
}

func TestZeroGuards(t *testing.T) {
	if (Estimate{}).Throughput() != 0 {
		t.Error("zero-time throughput")
	}
	if (Estimate{Seconds: 1}).PerWatt() != 0 {
		t.Error("zero-watt efficiency")
	}
	if EfficiencyRatio(Estimate{Seconds: 1, Watts: 1, WorkUnits: 1}, Estimate{}) != 0 {
		t.Error("ratio against zero baseline")
	}
	if Speedup(Estimate{}, Estimate{Seconds: 1}) != 0 {
		t.Error("speedup of zero-time estimate")
	}
}

func TestPaperStyleRatios(t *testing.T) {
	// Mimic the paper's autofocus numbers: Intel 21,600 px/s at 17.5 W,
	// Epiphany 192,857 px/s at 2 W -> 78x throughput/W.
	intel := Estimate{Seconds: 1, Watts: 17.5, WorkUnits: 21600}
	epi := Estimate{Seconds: 1, Watts: 2, WorkUnits: 192857}
	got := EfficiencyRatio(epi, intel)
	if math.Abs(got-78.1) > 0.5 {
		t.Errorf("efficiency ratio %v, want ~78", got)
	}
}

func TestSpeedup(t *testing.T) {
	a := Estimate{Seconds: 0.305}
	b := Estimate{Seconds: 1.295}
	if got := Speedup(a, b); math.Abs(got-4.246) > 0.01 {
		t.Errorf("speedup %v", got)
	}
}

func TestStringFormat(t *testing.T) {
	s := Estimate{Seconds: 0.1, Watts: 2, WorkUnits: 100}.String()
	if !strings.Contains(s, "100.0 ms") || !strings.Contains(s, "2.0 W") {
		t.Errorf("String = %q", s)
	}
}
