package energy

import (
	"strings"
	"testing"

	"sarmany/internal/emu"
)

func TestEpiphanyBreakdownComponents(t *testing.T) {
	s := emu.CoreStats{
		FMA: 1e9, Flop: 5e8, IOp: 2e8,
		Sqrt: 1e6, Div: 1e6, Trig: 1e6,
		LocalLoads: 1e8, LocalStores: 5e7,
		NoCBytes: 1e8,
		ExtReadB: 5e7, ExtWriteB: 5e7,
	}
	b := EpiphanyBreakdown(s, 0.3)
	for name, v := range map[string]float64{
		"compute": b.ComputeJ, "local": b.LocalMemJ, "noc": b.NoCJ,
		"elink": b.ELinkJ, "static": b.StaticJ,
	} {
		if v <= 0 {
			t.Errorf("%s component %v, want > 0", name, v)
		}
	}
	if b.Total() <= b.ComputeJ {
		t.Error("total not above compute alone")
	}
	if got := b.AveragePower(0.3); got != b.Total()/0.3 {
		t.Errorf("AveragePower %v", got)
	}
	if b.AveragePower(0) != 0 {
		t.Error("zero-time power")
	}
}

func TestBreakdownOfRealFFBPRun(t *testing.T) {
	// A fully loaded FFBP-style op mix should land within a factor of a
	// few of the 2 W datasheet figure — the sanity anchor of the model.
	// Approximate the paper-scale parallel run: ~250 ms, ~3.5e9 FMA-class
	// ops, ~2.5e8 MB of off-chip traffic.
	s := emu.CoreStats{
		FMA: 2.2e9, Flop: 1.3e9, IOp: 1.8e9,
		Sqrt: 2e7, Div: 2e7, Trig: 2.2e7,
		LocalLoads: 1e8, LocalStores: 0,
		ExtReadB: 1.7e8, ExtWriteB: 9e7,
	}
	const sec = 0.25
	b := EpiphanyBreakdown(s, sec)
	p := b.AveragePower(sec)
	if p < 0.4 || p > 6 {
		t.Errorf("modeled average power %v W implausible vs the 2 W budget", p)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{ComputeJ: 1, LocalMemJ: 0.5, NoCJ: 0.1, ELinkJ: 0.2, StaticJ: 0.2}
	s := b.String()
	for _, want := range []string{"compute", "local mem", "mesh NoC", "eLink", "static", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in %q", want, s)
		}
	}
	if (Breakdown{}).String() != "no energy recorded" {
		t.Error("empty breakdown formatting")
	}
}
