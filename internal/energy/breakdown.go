package energy

import (
	"fmt"
	"strings"

	"sarmany/internal/emu"
)

// Breakdown decomposes a chip run's energy into architectural components,
// following the paper's Sec. VI-A discussion of where the Epiphany saves
// power: compute in the cores (FMA, register-file traffic), the local
// memory banks, the mesh network ("all signals travel from one tile to its
// immediate neighbor, minimizing signal length"), the off-chip eLink, and
// the clock/leakage baseline that fine-grained clock gating minimizes.
type Breakdown struct {
	ComputeJ  float64 `json:"compute_j"`   // FPU + IALU operations
	LocalMemJ float64 `json:"local_mem_j"` // local bank accesses
	NoCJ      float64 `json:"noc_j"`       // mesh traffic
	ELinkJ    float64 `json:"elink_j"`     // off-chip traffic
	StaticJ   float64 `json:"static_j"`    // clock distribution + leakage over the run
}

// Per-event energy constants for the 65 nm Epiphany-III class core, in
// joules. These are order-of-magnitude figures from published 65 nm
// energy-per-operation surveys (an FPU op costs tens of pJ; an 8 KB SRAM
// access ~10 pJ; moving a byte one hop on a short-wire mesh ~1 pJ;
// off-chip I/O tens of pJ per byte), chosen so that a fully busy 16-core
// chip lands near the 2 W datasheet figure the paper uses.
const (
	fpOpJ      = 25e-12
	intOpJ     = 8e-12
	localAccJ  = 12e-12
	nocByteJ   = 2e-12
	elinkByteJ = 60e-12
	// staticW is the always-on fraction (clock tree + leakage) of the
	// 2 W chip budget after the paper's "extensive, fine-grained clock
	// gating".
	staticW = 0.4
)

// NoCEnergyJ returns the mesh-network energy of moving the given byte
// count — the marginal cost the degradation report charges retransmitted
// link traffic.
func NoCEnergyJ(bytes uint64) float64 { return float64(bytes) * nocByteJ }

// StaticEnergyJ returns the always-on (clock tree + leakage) energy over
// the given wall time — the cost of cycles a fault stretched the run by.
func StaticEnergyJ(seconds float64) float64 { return staticW * seconds }

// EpiphanyBreakdown estimates the energy components of a run from the
// chip's aggregate statistics and execution time.
func EpiphanyBreakdown(s emu.CoreStats, seconds float64) Breakdown {
	fpu := float64(s.FMA + s.Flop)
	// Software routines execute their expanded FPU operation counts; the
	// stats track invocation counts, so expand with nominal sizes here.
	fpu += float64(s.Sqrt)*10 + float64(s.Div)*17 + float64(s.Trig)*45
	return Breakdown{
		ComputeJ:  fpu*fpOpJ + float64(s.IOp)*intOpJ,
		LocalMemJ: float64(s.LocalLoads+s.LocalStores) * localAccJ,
		NoCJ:      float64(s.NoCBytes) * nocByteJ,
		ELinkJ:    float64(s.ExtReadB+s.ExtWriteB) * elinkByteJ,
		StaticJ:   staticW * seconds,
	}
}

// Total returns the summed energy in joules.
func (b Breakdown) Total() float64 {
	return b.ComputeJ + b.LocalMemJ + b.NoCJ + b.ELinkJ + b.StaticJ
}

// AveragePower returns the run's mean power in watts.
func (b Breakdown) AveragePower(seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return b.Total() / seconds
}

// String formats the breakdown with per-component percentages.
func (b Breakdown) String() string {
	tot := b.Total()
	if tot == 0 {
		return "no energy recorded"
	}
	var sb strings.Builder
	item := func(name string, j float64) {
		fmt.Fprintf(&sb, "%-10s %10.3g J (%4.1f%%)\n", name, j, 100*j/tot)
	}
	item("compute", b.ComputeJ)
	item("local mem", b.LocalMemJ)
	item("mesh NoC", b.NoCJ)
	item("eLink", b.ELinkJ)
	item("static", b.StaticJ)
	fmt.Fprintf(&sb, "%-10s %10.3g J\n", "total", tot)
	return sb.String()
}
