// Package flow is a small process-network layer over the Epiphany chip
// model, addressing the programmability problem the paper's Sec. VI-B
// identifies with MPMD mappings: "explicit management of synchronization
// between the different cores ... needs to be done manually and increases
// the burden on the programmer in addition to the requirement of writing
// separate C programs for each individual core". The paper's proposed
// direction is a higher-level language (their occam-pi work); this package
// is that idea in library form: a dataflow graph of named processes and
// typed channels, placed onto cores and executed with the synchronization
// generated rather than hand-written.
//
//	g := flow.NewGraph()
//	g.Node("producer", func(c *flow.Ctx) {
//	    for i := 0; i < 100; i++ {
//	        c.Core.FMA(50)
//	        c.Out("data").Send([]complex64{complex(float32(i), 0)})
//	    }
//	})
//	g.Node("consumer", func(c *flow.Ctx) {
//	    for i := 0; i < 100; i++ {
//	        v := c.In("data").Recv()
//	        ...
//	    }
//	})
//	g.Connect("producer", "data", "consumer", "data", 4)
//	err := g.Run(chip, nil) // nil placement = node order
package flow

import (
	"fmt"

	"sarmany/internal/emu"
)

// Proc is one process body: it runs on its placed core, exchanging data
// through the context's named ports.
type Proc func(*Ctx)

// Ctx gives a running process access to its core and its connected ports.
type Ctx struct {
	// Core is the simulated core the process was placed on; charge it for
	// the process's computation.
	Core *emu.Core
	ins  map[string]*InPort
	outs map[string]*OutPort
}

// In returns the named input port; it panics if the graph never connected
// an edge to that name (a programming error in the graph).
func (c *Ctx) In(name string) *InPort {
	p, ok := c.ins[name]
	if !ok {
		panic(fmt.Sprintf("flow: process has no input port %q", name))
	}
	return p
}

// Out returns the named output port; it panics if unconnected.
func (c *Ctx) Out(name string) *OutPort {
	p, ok := c.outs[name]
	if !ok {
		panic(fmt.Sprintf("flow: process has no output port %q", name))
	}
	return p
}

// InPort receives blocks of complex samples from an upstream process.
type InPort struct {
	link *emu.Link
	core *emu.Core
}

// Recv blocks (in simulated time) until the next block arrives.
func (p *InPort) Recv() []complex64 { return p.link.Recv(p.core) }

// OutPort streams blocks of complex samples to a downstream process.
type OutPort struct {
	link *emu.Link
	core *emu.Core
}

// Send streams vals downstream, back-pressuring when the receiver's
// buffer is full.
func (p *OutPort) Send(vals []complex64) { p.link.Send(p.core, vals) }

type node struct {
	name string
	proc Proc
}

type edge struct {
	from, fromPort string
	to, toPort     string
	capacity       int
}

// Graph is a dataflow program under construction.
type Graph struct {
	nodes []node
	index map[string]int
	edges []edge
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{index: map[string]int{}}
}

// Node adds a named process. Names must be unique.
func (g *Graph) Node(name string, p Proc) error {
	if _, dup := g.index[name]; dup {
		return fmt.Errorf("flow: duplicate node %q", name)
	}
	if p == nil {
		return fmt.Errorf("flow: node %q has no body", name)
	}
	g.index[name] = len(g.nodes)
	g.nodes = append(g.nodes, node{name: name, proc: p})
	return nil
}

// Connect adds a one-way channel from fromNode's output port to toNode's
// input port with the given block capacity. Each (node, port, direction)
// may be used by exactly one edge — the single-producer single-consumer
// discipline that keeps the simulation deterministic.
func (g *Graph) Connect(fromNode, fromPort, toNode, toPort string, capacity int) error {
	if _, ok := g.index[fromNode]; !ok {
		return fmt.Errorf("flow: unknown node %q", fromNode)
	}
	if _, ok := g.index[toNode]; !ok {
		return fmt.Errorf("flow: unknown node %q", toNode)
	}
	if capacity < 1 {
		return fmt.Errorf("flow: capacity %d < 1", capacity)
	}
	for _, e := range g.edges {
		if e.from == fromNode && e.fromPort == fromPort {
			return fmt.Errorf("flow: output %s.%s already connected", fromNode, fromPort)
		}
		if e.to == toNode && e.toPort == toPort {
			return fmt.Errorf("flow: input %s.%s already connected", toNode, toPort)
		}
	}
	g.edges = append(g.edges, edge{fromNode, fromPort, toNode, toPort, capacity})
	return nil
}

// Run places every node on a core of the chip and executes the graph to
// completion. placement maps node index to core index; nil places node i
// on core i. All channels are wired before any process starts, so no
// manual synchronization is needed — the property the paper's MPMD
// implementation had to build by hand.
func (g *Graph) Run(ch *emu.Chip, placement []int) error {
	n := len(g.nodes)
	if n == 0 {
		return fmt.Errorf("flow: empty graph")
	}
	if placement == nil {
		placement = make([]int, n)
		for i := range placement {
			placement[i] = i
		}
	}
	if len(placement) != n {
		return fmt.Errorf("flow: placement has %d entries for %d nodes", len(placement), n)
	}
	seen := make(map[int]bool, n)
	for i, c := range placement {
		if c < 0 || c >= len(ch.Cores) {
			return fmt.Errorf("flow: node %q placed on nonexistent core %d", g.nodes[i].name, c)
		}
		if seen[c] {
			return fmt.Errorf("flow: core %d hosts more than one node", c)
		}
		seen[c] = true
	}
	// Graceful degradation: nodes placed on cores a fault plan halted move
	// to the nearest free live core before any channel is wired. Without
	// faults this returns the placement unchanged.
	placement, err := ch.RemapPlacement(placement)
	if err != nil {
		return fmt.Errorf("flow: cannot degrade: %w", err)
	}
	maxCore := 0
	for _, c := range placement {
		if c > maxCore {
			maxCore = c
		}
	}

	// Wire the channels.
	ctxs := make([]*Ctx, n)
	for i := range ctxs {
		ctxs[i] = &Ctx{ins: map[string]*InPort{}, outs: map[string]*OutPort{}}
	}
	for _, e := range g.edges {
		fi, ti := g.index[e.from], g.index[e.to]
		link := ch.Connect(placement[fi], placement[ti], e.capacity)
		ctxs[fi].outs[e.fromPort] = &OutPort{link: link}
		ctxs[ti].ins[e.toPort] = &InPort{link: link}
	}

	// Map cores to nodes and run. Cores that host no node return at once.
	nodeOfCore := make(map[int]int, n)
	for i, c := range placement {
		nodeOfCore[c] = i
	}
	ch.Run(maxCore+1, func(core *emu.Core) {
		i, ok := nodeOfCore[core.ID]
		if !ok {
			return
		}
		ctx := ctxs[i]
		ctx.Core = core
		for _, p := range ctx.ins {
			p.core = core
		}
		for _, p := range ctx.outs {
			p.core = core
		}
		g.nodes[i].proc(ctx)
	})
	return nil
}
