package flow

import (
	"testing"

	"sarmany/internal/emu"
)

func TestTwoStagePipeline(t *testing.T) {
	g := NewGraph()
	const items = 50
	var got []complex64
	if err := g.Node("src", func(c *Ctx) {
		for i := 0; i < items; i++ {
			c.Core.FMA(10)
			c.Out("d").Send([]complex64{complex(float32(i), 0)})
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.Node("sink", func(c *Ctx) {
		for i := 0; i < items; i++ {
			v := c.In("d").Recv()
			c.Core.FMA(20)
			got = append(got, v[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "d", "sink", "d", 2); err != nil {
		t.Fatal(err)
	}
	ch := emu.New(emu.E16G3())
	if err := g.Run(ch, nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != items {
		t.Fatalf("received %d items", len(got))
	}
	for i, v := range got {
		if real(v) != float32(i) {
			t.Fatalf("item %d = %v", i, v)
		}
	}
	if ch.MaxCycles() <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestDiamondGraph(t *testing.T) {
	// src fans out to two workers; a join sums their streams. Exercises
	// multiple ports per node and custom placement.
	g := NewGraph()
	const items = 20
	var sums []float32
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Node("src", func(c *Ctx) {
		for i := 0; i < items; i++ {
			v := []complex64{complex(float32(i), 0)}
			c.Out("a").Send(v)
			c.Out("b").Send(v)
		}
	}))
	must(g.Node("double", func(c *Ctx) {
		for i := 0; i < items; i++ {
			v := c.In("x").Recv()
			c.Core.FMA(2)
			c.Out("y").Send([]complex64{v[0] * 2})
		}
	}))
	must(g.Node("triple", func(c *Ctx) {
		for i := 0; i < items; i++ {
			v := c.In("x").Recv()
			c.Core.FMA(2)
			c.Out("y").Send([]complex64{v[0] * 3})
		}
	}))
	must(g.Node("join", func(c *Ctx) {
		for i := 0; i < items; i++ {
			a := c.In("a").Recv()
			b := c.In("b").Recv()
			c.Core.Flop(2)
			sums = append(sums, real(a[0])+real(b[0]))
		}
	}))
	must(g.Connect("src", "a", "double", "x", 2))
	must(g.Connect("src", "b", "triple", "x", 2))
	must(g.Connect("double", "y", "join", "a", 2))
	must(g.Connect("triple", "y", "join", "b", 2))

	ch := emu.New(emu.E16G3())
	// Place on a 2x2 sub-mesh to keep hops short.
	if err := g.Run(ch, []int{0, 1, 4, 5}); err != nil {
		t.Fatal(err)
	}
	for i, s := range sums {
		if s != float32(5*i) {
			t.Fatalf("sum %d = %v, want %v", i, s, 5*i)
		}
	}
}

func TestGraphValidation(t *testing.T) {
	g := NewGraph()
	if err := g.Node("a", func(*Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if err := g.Node("a", func(*Ctx) {}); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := g.Node("nil", nil); err == nil {
		t.Error("nil body accepted")
	}
	if err := g.Connect("a", "x", "missing", "y", 1); err == nil {
		t.Error("unknown target accepted")
	}
	if err := g.Connect("missing", "x", "a", "y", 1); err == nil {
		t.Error("unknown source accepted")
	}
	if err := g.Node("b", func(*Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("a", "x", "b", "y", 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := g.Connect("a", "x", "b", "y", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("a", "x", "b", "z", 1); err == nil {
		t.Error("double-connected output accepted")
	}
	if err := g.Connect("b", "q", "b", "y", 1); err == nil {
		t.Error("double-connected input accepted")
	}
}

func TestRunValidation(t *testing.T) {
	ch := emu.New(emu.E16G3())
	if err := NewGraph().Run(ch, nil); err == nil {
		t.Error("empty graph accepted")
	}
	g := NewGraph()
	if err := g.Node("a", func(*Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if err := g.Node("b", func(*Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(ch, []int{0}); err == nil {
		t.Error("short placement accepted")
	}
	if err := g.Run(ch, []int{0, 99}); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := g.Run(ch, []int{3, 3}); err == nil {
		t.Error("double-occupied core accepted")
	}
}

func TestUnconnectedPortPanics(t *testing.T) {
	g := NewGraph()
	panicked := make(chan bool, 1)
	if err := g.Node("a", func(c *Ctx) {
		defer func() { panicked <- recover() != nil }()
		c.Out("nowhere").Send(nil)
	}); err != nil {
		t.Fatal(err)
	}
	ch := emu.New(emu.E16G3())
	if err := g.Run(ch, nil); err != nil {
		t.Fatal(err)
	}
	if !<-panicked {
		t.Error("unconnected port did not panic")
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() float64 {
		g := NewGraph()
		_ = g.Node("p", func(c *Ctx) {
			for i := 0; i < 30; i++ {
				c.Core.FMA(7)
				c.Out("d").Send(make([]complex64, 4))
			}
		})
		_ = g.Node("q", func(c *Ctx) {
			for i := 0; i < 30; i++ {
				c.In("d").Recv()
				c.Core.FMA(13)
			}
		})
		_ = g.Connect("p", "d", "q", "d", 3)
		ch := emu.New(emu.E16G3())
		if err := g.Run(ch, nil); err != nil {
			t.Fatal(err)
		}
		return ch.MaxCycles()
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: %v cycles, first %v", i, got, first)
		}
	}
}
