//go:build !race

package sweep

// raceEnabled records in the throughput envelope whether the run paid
// the race detector's overhead.
const raceEnabled = false
