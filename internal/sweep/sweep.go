// Package sweep is the concurrent experiment runner behind cmd/benchtab
// and the parameter-sweep examples. A sweep is a slice of independent
// simulation jobs — each a report.Config plus a workload selector — that
// the engine fans out across a bounded worker pool and collects back in
// deterministic input order, regardless of completion order.
//
// Three properties make it the layer batch experiments sit on:
//
//   - A content-addressed result cache: each job is keyed by a SHA-256
//     hash of its canonicalized config, workload selector and a
//     code-version salt. Completed bench.Result envelopes persist under
//     Options.CacheDir, so re-running a sweep only simulates the
//     configurations that changed — a warm rerun replays byte-identical
//     envelopes with zero chip simulations.
//   - Fault isolation: each job runs with panic recovery and an optional
//     per-job timeout, so one diverging simulation surfaces as a typed
//     error (PanicError, TimeoutError) in its result slot instead of
//     crashing or hanging the whole sweep.
//   - Progress metrics: job lifecycle counters and a per-job duration
//     histogram feed an obs.Registry (sweep.jobs.* / sweep.job.seconds),
//     so -metrics output covers sweeps like any other simulation.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"sarmany/internal/bench"
	"sarmany/internal/obs"
	"sarmany/internal/report"
)

// Salt is the default code-version salt mixed into every cache key. Bump
// it whenever kernels or machine models change modeled results, so stale
// cached envelopes from older code cannot be replayed as current.
const Salt = "sarmany-sweep-v1"

// Job is one simulation of a sweep: a workload selector (a cmd/benchtab
// experiment key for the default runner, or any label a custom
// Options.Run interprets) applied to one experiment configuration.
type Job struct {
	// Name labels the job in errors and progress output. It does not
	// enter the cache key, so renaming a job does not invalidate it.
	Name string
	// Exp selects the workload (bench.Keys lists the built-in selectors).
	Exp string
	// Config is the experiment configuration the workload runs at.
	Config report.Config
	// Extra carries additional workload parameters for custom runners
	// (e.g. a core count or a candidate shift). It must be
	// JSON-marshalable; it is canonicalized into the cache key.
	Extra any
}

// RunFunc executes one job and returns its result envelope.
type RunFunc func(ctx context.Context, j Job) (bench.Result, error)

// Options configures a sweep run.
type Options struct {
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// CacheDir enables the content-addressed result cache when non-empty.
	CacheDir string
	// Timeout bounds each job's run time; <= 0 means no per-job limit.
	// On expiry the job's context is cancelled and the job surfaces a
	// TimeoutError; a simulation that never reaches a context checkpoint
	// is abandoned (its goroutine is orphaned), not crashed into.
	Timeout time.Duration
	// Salt overrides the code-version salt in cache keys ("" = Salt).
	Salt string
	// Metrics receives job lifecycle counters and the per-job duration
	// histogram when non-nil.
	Metrics *obs.Registry
	// Run overrides the job runner. Nil means the built-in bench runner:
	// bench.Compute(ctx, j.Exp, j.Config, "") — every cmd/benchtab
	// experiment key works out of the box.
	Run RunFunc
	// SpanFor supplies the request-trace parent span for a job (by input
	// index), letting a caller that traces requests (internal/serve) see
	// the sweep's cache lookup and execution as child spans of its own.
	// The job's spans also ride the runner context (obs.SpanFromContext),
	// so custom runners can hang deeper children off them. Nil — and nil
	// returns — disable tracing for the sweep or the job respectively.
	SpanFor func(index int, j Job) *obs.ReqSpan
}

// JobResult is one job's outcome, at the same index as its job.
type JobResult struct {
	Job   Job
	Index int
	// Result is the experiment envelope. For a fresh run Data holds the
	// concrete point type; for a cache hit it is a json.RawMessage
	// (bench.PrintResult and bench.DecodeData handle both).
	Result bench.Result
	// Raw is the canonical envelope encoding (bench.Marshal form). Fresh
	// and cached runs of the same job produce byte-identical Raw.
	Raw []byte
	// Cached reports whether the envelope was replayed from the cache.
	Cached bool
	// Duration is the job's wall-clock run time (0 for cache hits).
	Duration time.Duration
	// Err is the job's failure, if any: a PanicError, a TimeoutError, a
	// context error, or whatever the runner returned.
	Err error
}

// PanicError reports a job whose runner panicked; the sweep recovered it
// and carried on with the remaining jobs.
type PanicError struct {
	Job   string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: job %q panicked: %v", e.Job, e.Value)
}

// TimeoutError reports a job that exceeded Options.Timeout.
type TimeoutError struct {
	Job   string
	After time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("sweep: job %q timed out after %v", e.Job, e.After)
}

// metrics bundles the registry instruments so a nil registry costs one
// branch per update.
type metrics struct {
	queued, done, cached, failed, executed, deduped *obs.Counter
	running                                         *obs.Gauge
	seconds                                         *obs.Histogram
	mu                                              sync.Mutex
	nrunning                                        int
}

func newMetrics(r *obs.Registry) *metrics {
	if r == nil {
		return nil
	}
	return &metrics{
		queued:   r.Counter("sweep.jobs.queued"),
		done:     r.Counter("sweep.jobs.done"),
		cached:   r.Counter("sweep.jobs.cached"),
		failed:   r.Counter("sweep.jobs.failed"),
		executed: r.Counter("sweep.jobs.executed"),
		deduped:  r.Counter("sweep.jobs.deduped"),
		running:  r.Gauge("sweep.jobs.running"),
		seconds:  r.Histogram("sweep.job.seconds"),
	}
}

func (m *metrics) addRunning(d int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.nrunning += d
	m.running.Set(float64(m.nrunning))
	m.mu.Unlock()
}

// Run executes the jobs across the worker pool and returns their results
// in input order. Job failures are reported per slot in JobResult.Err;
// the returned error is reserved for sweep-level problems (an unusable
// cache directory). Jobs with identical cache keys are deduplicated
// within the run: one representative executes and every duplicate slot
// receives a copy of its result.
func Run(ctx context.Context, jobs []Job, opt Options) ([]JobResult, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	runner := opt.Run
	if runner == nil {
		runner = func(ctx context.Context, j Job) (bench.Result, error) {
			return bench.Compute(ctx, j.Exp, j.Config, "")
		}
	}
	salt := opt.Salt
	if salt == "" {
		salt = Salt
	}
	var cache *diskCache
	if opt.CacheDir != "" {
		c, err := openCache(opt.CacheDir)
		if err != nil {
			return nil, err
		}
		cache = c
	}
	m := newMetrics(opt.Metrics)

	results := make([]JobResult, len(jobs))
	// Group duplicate jobs by cache key: the first index of each key is
	// its representative; the rest copy its result afterwards.
	reps := make([]int, 0, len(jobs))
	dup := make(map[string][]int)
	for i, j := range jobs {
		results[i] = JobResult{Job: j, Index: i}
		key, err := cacheKey(j, salt)
		if err != nil {
			// Unhashable Extra: run the job uncached and undeduplicated.
			reps = append(reps, i)
			if m != nil {
				m.queued.Add(1)
			}
			continue
		}
		if idxs, seen := dup[key]; seen {
			dup[key] = append(idxs, i)
			if m != nil {
				m.queued.Add(1)
			}
			continue
		}
		dup[key] = []int{i}
		reps = append(reps, i)
		if m != nil {
			m.queued.Add(1)
		}
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				var parent *obs.ReqSpan
				if opt.SpanFor != nil {
					parent = opt.SpanFor(i, jobs[i])
				}
				runOne(ctx, &results[i], runner, cache, salt, opt.Timeout, m, parent)
			}
		}()
	}
	for _, i := range reps {
		work <- i
	}
	close(work)
	wg.Wait()

	// Fan representative results out to duplicate slots. Each duplicate
	// passes through the same lifecycle counters as its representative
	// (done or failed, cached when the envelope was replayed), plus a
	// deduped count — so sweep.jobs.queued always reconciles with
	// done+failed, and warm-cache reruns of deduplicated sweeps report
	// every slot in sweep.jobs.cached.
	for _, idxs := range dup {
		if len(idxs) < 2 {
			continue
		}
		rep := results[idxs[0]]
		for _, i := range idxs[1:] {
			r := rep
			r.Job, r.Index = jobs[i], i
			results[i] = r
			if m == nil {
				continue
			}
			m.deduped.Add(1)
			if r.Err != nil {
				m.failed.Add(1)
				continue
			}
			m.done.Add(1)
			if r.Cached {
				m.cached.Add(1)
			}
		}
	}
	return results, nil
}

// runOne executes (or replays) one job into its result slot. parent,
// when non-nil, is the request-trace span the job's cache-lookup and
// execute spans nest under.
func runOne(ctx context.Context, res *JobResult, runner RunFunc, cache *diskCache, salt string, timeout time.Duration, m *metrics, parent *obs.ReqSpan) {
	key, keyErr := cacheKey(res.Job, salt)
	if cache != nil && keyErr == nil {
		ls := parent.Child("sweep.cache.lookup")
		raw, env, ok := cache.load(key)
		ls.SetAttr("hit", strconv.FormatBool(ok))
		ls.End()
		if ok {
			res.Raw, res.Result, res.Cached = raw, env, true
			if m != nil {
				m.cached.Add(1)
				m.done.Add(1)
			}
			return
		}
	}

	if err := ctx.Err(); err != nil {
		res.Err = err
		if m != nil {
			m.failed.Add(1)
		}
		return
	}

	jctx, cancel := ctx, func() {}
	if timeout > 0 {
		jctx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()

	// The execute span rides the runner context so deeper layers
	// (bench, custom runners) can nest their own children under it.
	es := parent.Child("sweep.execute")
	if es != nil {
		jctx = obs.ContextWithSpan(jctx, es)
	}

	m.addRunning(1)
	if m != nil {
		m.executed.Add(1)
	}
	start := time.Now()

	type outcome struct {
		env bench.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				stack := make([]byte, 16<<10)
				stack = stack[:runtime.Stack(stack, false)]
				ch <- outcome{err: &PanicError{Job: res.Job.Name, Value: v, Stack: stack}}
			}
		}()
		env, err := runner(jctx, res.Job)
		ch <- outcome{env: env, err: err}
	}()

	var out outcome
	select {
	case out = <-ch:
		if out.err != nil && timeout > 0 && jctx.Err() == context.DeadlineExceeded {
			// The runner noticed the deadline at a context checkpoint.
			out.err = &TimeoutError{Job: res.Job.Name, After: timeout}
		}
	case <-jctx.Done():
		// The runner is stuck past its deadline (or the sweep was
		// cancelled); abandon its goroutine rather than hang the pool.
		if timeout > 0 && jctx.Err() == context.DeadlineExceeded {
			out = outcome{err: &TimeoutError{Job: res.Job.Name, After: timeout}}
		} else {
			out = outcome{err: ctx.Err()}
		}
	}

	res.Duration = time.Since(start)
	m.addRunning(-1)
	if m != nil {
		m.seconds.Observe(res.Duration.Seconds())
	}
	if out.err != nil {
		es.SetAttr("error", out.err.Error())
	}
	es.End()

	if out.err != nil {
		res.Err = out.err
		if m != nil {
			m.failed.Add(1)
		}
		return
	}

	res.Result = out.env
	raw, err := bench.Marshal(out.env)
	if err != nil {
		res.Err = fmt.Errorf("sweep: job %q: encode result: %w", res.Job.Name, err)
		if m != nil {
			m.failed.Add(1)
		}
		return
	}
	res.Raw = raw
	if cache != nil && keyErr == nil {
		// Best-effort: a failed store only costs a future cache miss.
		cache.store(key, raw)
	}
	if m != nil {
		m.done.Add(1)
	}
}

// Failed returns the results whose jobs failed.
func Failed(results []JobResult) []JobResult {
	var out []JobResult
	for _, r := range results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}
