package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"sarmany/internal/bench"
	"sarmany/internal/report"
)

// cacheKey returns the content address of a job: a SHA-256 over the
// canonical JSON of the workload selector, the experiment configuration,
// any extra workload parameters, and the code-version salt. Job.Name is
// deliberately excluded — a relabeled job is the same simulation.
//
// encoding/json is canonical for this purpose: struct fields marshal in
// declaration order and map keys sort, so equal configs always hash
// equally. All config types (report.Config, sar.Params, emu.Params,
// refcpu.Params) are plain data.
func cacheKey(j Job, salt string) (string, error) {
	b, err := json.Marshal(struct {
		Salt   string        `json:"salt"`
		Exp    string        `json:"exp"`
		Config report.Config `json:"config"`
		Extra  any           `json:"extra,omitempty"`
	}{Salt: salt, Exp: j.Exp, Config: j.Config, Extra: j.Extra})
	if err != nil {
		return "", fmt.Errorf("sweep: job %q not hashable: %w", j.Name, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Key exposes a job's cache key (with the default salt when salt is
// empty) for tooling and tests.
func Key(j Job, salt string) (string, error) {
	if salt == "" {
		salt = Salt
	}
	return cacheKey(j, salt)
}

// diskCache stores one canonical envelope encoding per content address,
// as <dir>/sweep-<key>.json.
type diskCache struct{ dir string }

func openCache(dir string) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	return &diskCache{dir: dir}, nil
}

func (c *diskCache) path(key string) string {
	return filepath.Join(c.dir, "sweep-"+key+".json")
}

// load returns the cached envelope for key, if present and decodable.
// Data stays a json.RawMessage so the replayed envelope re-encodes to
// the exact bytes that were stored.
func (c *diskCache) load(key string) ([]byte, bench.Result, bool) {
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, bench.Result{}, false
	}
	var rr bench.RawResult
	if err := json.Unmarshal(raw, &rr); err != nil {
		// A truncated or corrupt entry is a miss; the rerun overwrites it.
		return nil, bench.Result{}, false
	}
	env := bench.Result{Name: rr.Name, Title: rr.Title, Pulses: rr.Pulses, Bins: rr.Bins, Data: rr.Data}
	return raw, env, true
}

// store writes the envelope bytes atomically (temp file + rename), so a
// concurrent reader never observes a partial entry.
func (c *diskCache) store(key string, raw []byte) error {
	tmp, err := os.CreateTemp(c.dir, "sweep-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}
