package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"sarmany/internal/bench"
	"sarmany/internal/emu"
	"sarmany/internal/kernels"
	"sarmany/internal/obs"
	"sarmany/internal/report"
	"sarmany/internal/sar"
)

// ffbpPoint is the test runner's envelope payload.
type ffbpPoint struct {
	Cores   int     `json:"cores"`
	Seconds float64 `json:"seconds"`
}

// testWorkload returns n jobs over a shared dataset plus the runner that
// executes them: a parallel FFBP simulation on an Epiphany mesh of Extra
// cores. The chip model is cycle-accounted, not wall-clock timed, so
// equal jobs always produce byte-identical envelopes.
func testWorkload(tb testing.TB, pulses, bins, n int) ([]Job, RunFunc) {
	tb.Helper()
	p := sar.DefaultParams()
	p.NumPulses = pulses
	p.NumBins = bins
	p.R0 = 500
	cfg := report.Config{Params: p, Box: report.DefaultBox(p)}
	data := sar.Simulate(p, sar.SixTargetScene(p), nil)

	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Name: fmt.Sprintf("ffbp-%02d", i), Exp: "test-ffbp",
			Config: cfg, Extra: 1 + i%16,
		}
	}
	run := func(ctx context.Context, j Job) (bench.Result, error) {
		if err := ctx.Err(); err != nil {
			return bench.Result{}, err
		}
		cores := j.Extra.(int)
		chip := emu.New(emu.E16G3())
		if _, _, err := kernels.ParFFBP(chip, cores, data, j.Config.Params, j.Config.Box); err != nil {
			return bench.Result{}, err
		}
		return bench.Result{
			Name: j.Name, Title: "test FFBP point",
			Pulses: pulses, Bins: bins,
			Data: ffbpPoint{Cores: cores, Seconds: chip.Time()},
		}, nil
	}
	return jobs, run
}

func counter(r *obs.Registry, name string) float64 {
	return r.Counter(name).Value()
}

// TestSweepColdWarmIdentical is the engine's core contract: a 16-job
// sweep on 8 workers, run cold and then warm against the same cache,
// returns byte-identical result envelopes in input order — and the warm
// run performs zero chip simulations (sweep.jobs.executed stays 0).
func TestSweepColdWarmIdentical(t *testing.T) {
	jobs, run := testWorkload(t, 64, 61, 16)
	dir := t.TempDir()

	cold := obs.NewRegistry()
	cres, err := Run(context.Background(), jobs, Options{
		Workers: 8, CacheDir: dir, Metrics: cold, Run: run,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := counter(cold, "sweep.jobs.executed"); got != 16 {
		t.Errorf("cold executed = %v, want 16", got)
	}
	if got := counter(cold, "sweep.jobs.cached"); got != 0 {
		t.Errorf("cold cached = %v, want 0", got)
	}
	if got := counter(cold, "sweep.jobs.done"); got != 16 {
		t.Errorf("cold done = %v, want 16", got)
	}

	warm := obs.NewRegistry()
	wres, err := Run(context.Background(), jobs, Options{
		Workers: 8, CacheDir: dir, Metrics: warm, Run: run,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := counter(warm, "sweep.jobs.executed"); got != 0 {
		t.Errorf("warm executed = %v, want 0 (no simulations on a warm cache)", got)
	}
	if got := counter(warm, "sweep.jobs.cached"); got != 16 {
		t.Errorf("warm cached = %v, want 16", got)
	}

	for i := range jobs {
		c, w := cres[i], wres[i]
		if c.Err != nil || w.Err != nil {
			t.Fatalf("job %d: cold err %v, warm err %v", i, c.Err, w.Err)
		}
		if c.Index != i || w.Index != i || c.Job.Name != jobs[i].Name || w.Job.Name != jobs[i].Name {
			t.Errorf("job %d: results out of input order (cold %q@%d, warm %q@%d)",
				i, c.Job.Name, c.Index, w.Job.Name, w.Index)
		}
		if c.Cached {
			t.Errorf("job %d: cold run reported a cache hit", i)
		}
		if !w.Cached {
			t.Errorf("job %d: warm run missed the cache", i)
		}
		if len(c.Raw) == 0 || !bytes.Equal(c.Raw, w.Raw) {
			t.Errorf("job %d: warm envelope differs from cold (%d vs %d bytes)",
				i, len(c.Raw), len(w.Raw))
		}
	}
}

// TestSweepDedup: jobs with identical cache keys execute once per run;
// every duplicate slot receives a copy of the representative's result.
func TestSweepDedup(t *testing.T) {
	var runs atomic.Int64
	base := Job{Name: "a", Exp: "dup", Extra: 7}
	dup := base
	dup.Name = "b" // Name is not part of the key
	jobs := []Job{base, dup, base}

	res, err := Run(context.Background(), jobs, Options{
		Workers: 4,
		Run: func(ctx context.Context, j Job) (bench.Result, error) {
			runs.Add(1)
			return bench.Result{Name: "dup", Data: ffbpPoint{Cores: 7}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner executed %d times, want 1", got)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Index != i || r.Job.Name != jobs[i].Name {
			t.Errorf("job %d: got %q@%d", i, r.Job.Name, r.Index)
		}
		if !bytes.Equal(r.Raw, res[0].Raw) {
			t.Errorf("job %d: envelope differs from representative", i)
		}
	}
}

// TestSweepDedupMetrics: duplicate slots must pass through the same
// lifecycle counters as their representative, so queued reconciles with
// done+failed and a warm deduplicated sweep reports every slot cached.
func TestSweepDedupMetrics(t *testing.T) {
	base := Job{Name: "a", Exp: "dup", Extra: 7}
	dup, other := base, base
	dup.Name = "b" // Name is not part of the key
	other.Extra = 8
	jobs := []Job{base, dup, other, base}
	run := func(ctx context.Context, j Job) (bench.Result, error) {
		return bench.Result{Name: "dup", Data: ffbpPoint{Cores: j.Extra.(int)}}, nil
	}
	dir := t.TempDir()

	cold := obs.NewRegistry()
	if _, err := Run(context.Background(), jobs, Options{
		Workers: 4, CacheDir: dir, Metrics: cold, Run: run,
	}); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"sweep.jobs.queued":   4, // every input slot, duplicates included
		"sweep.jobs.executed": 2, // one per distinct key
		"sweep.jobs.deduped":  2,
		"sweep.jobs.done":     4,
		"sweep.jobs.cached":   0,
		"sweep.jobs.failed":   0,
	} {
		if got := counter(cold, name); got != want {
			t.Errorf("cold %s = %v, want %v", name, got, want)
		}
	}

	warm := obs.NewRegistry()
	if _, err := Run(context.Background(), jobs, Options{
		Workers: 4, CacheDir: dir, Metrics: warm, Run: run,
	}); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"sweep.jobs.queued":   4,
		"sweep.jobs.executed": 0,
		"sweep.jobs.deduped":  2,
		"sweep.jobs.done":     4,
		"sweep.jobs.cached":   4, // replayed representatives AND their duplicates
		"sweep.jobs.failed":   0,
	} {
		if got := counter(warm, name); got != want {
			t.Errorf("warm %s = %v, want %v", name, got, want)
		}
	}
}

// TestSweepDedupFailureMetrics: when a representative fails, its
// duplicate slots count as failed too, never as done.
func TestSweepDedupFailureMetrics(t *testing.T) {
	base := Job{Name: "a", Exp: "dup", Extra: 7}
	jobs := []Job{base, base}
	reg := obs.NewRegistry()
	res, err := Run(context.Background(), jobs, Options{
		Workers: 2, Metrics: reg,
		Run: func(ctx context.Context, j Job) (bench.Result, error) {
			panic("boom")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		var pe *PanicError
		if !errors.As(r.Err, &pe) {
			t.Errorf("job %d: err = %v, want PanicError", i, r.Err)
		}
	}
	if got := counter(reg, "sweep.jobs.failed"); got != 2 {
		t.Errorf("failed = %v, want 2 (representative + duplicate)", got)
	}
	if got := counter(reg, "sweep.jobs.done"); got != 0 {
		t.Errorf("done = %v, want 0", got)
	}
	if got := counter(reg, "sweep.jobs.deduped"); got != 1 {
		t.Errorf("deduped = %v, want 1", got)
	}
}

// TestSweepPanicRecovery: a panicking job surfaces as a PanicError in
// its slot; the remaining jobs complete normally.
func TestSweepPanicRecovery(t *testing.T) {
	jobs := []Job{{Name: "ok1", Exp: "p", Extra: 1}, {Name: "boom", Exp: "p", Extra: 2}, {Name: "ok2", Exp: "p", Extra: 3}}
	reg := obs.NewRegistry()
	res, err := Run(context.Background(), jobs, Options{
		Workers: 2, Metrics: reg,
		Run: func(ctx context.Context, j Job) (bench.Result, error) {
			if j.Name == "boom" {
				panic("diverged")
			}
			return bench.Result{Name: j.Name, Data: ffbpPoint{}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if !errors.As(res[1].Err, &pe) {
		t.Fatalf("job boom: err = %v, want PanicError", res[1].Err)
	}
	if pe.Job != "boom" || pe.Value != "diverged" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {%q %v stack:%d}", pe.Job, pe.Value, len(pe.Stack))
	}
	if res[0].Err != nil || res[2].Err != nil {
		t.Errorf("healthy jobs failed: %v, %v", res[0].Err, res[2].Err)
	}
	if got := counter(reg, "sweep.jobs.failed"); got != 1 {
		t.Errorf("failed counter = %v, want 1", got)
	}
	if got := len(Failed(res)); got != 1 {
		t.Errorf("Failed() returned %d results, want 1", got)
	}
}

// TestSweepTimeout: a job that overruns Options.Timeout surfaces as a
// TimeoutError whether it honours its context or ignores it entirely.
func TestSweepTimeout(t *testing.T) {
	jobs := []Job{{Name: "polite", Exp: "t", Extra: 1}, {Name: "stuck", Exp: "t", Extra: 2}}
	release := make(chan struct{})
	defer close(release)
	res, err := Run(context.Background(), jobs, Options{
		Workers: 2, Timeout: 50 * time.Millisecond,
		Run: func(ctx context.Context, j Job) (bench.Result, error) {
			if j.Name == "polite" {
				<-ctx.Done() // a kernel noticing the deadline at a checkpoint
				return bench.Result{}, ctx.Err()
			}
			<-release // a kernel that never checks its context
			return bench.Result{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		var te *TimeoutError
		if !errors.As(r.Err, &te) {
			t.Errorf("job %d: err = %v, want TimeoutError", i, r.Err)
			continue
		}
		if te.After != 50*time.Millisecond {
			t.Errorf("job %d: After = %v", i, te.After)
		}
	}
}

// TestSweepCancel: a cancelled sweep context fails pending jobs with the
// context error instead of running them.
func TestSweepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs, run := testWorkload(t, 64, 61, 4)
	reg := obs.NewRegistry()
	res, err := Run(ctx, jobs, Options{Workers: 2, Metrics: reg, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
	if got := counter(reg, "sweep.jobs.executed"); got != 0 {
		t.Errorf("executed = %v, want 0 after cancellation", got)
	}
}

// serialWorkload is testWorkload with a host-serial runner (sequential
// FFBP on one simulated core, no per-core goroutines), so each job
// occupies exactly one sweep worker and the engine's -j speedup is
// measurable on a multi-core host.
func serialWorkload(tb testing.TB, pulses, bins, n int) ([]Job, RunFunc) {
	tb.Helper()
	jobs, _ := testWorkload(tb, pulses, bins, n)
	p := jobs[0].Config.Params
	data := sar.Simulate(p, sar.SixTargetScene(p), nil)
	run := func(ctx context.Context, j Job) (bench.Result, error) {
		if err := ctx.Err(); err != nil {
			return bench.Result{}, err
		}
		chip := emu.New(emu.E16G3())
		if _, _, err := kernels.SeqFFBP(chip.Cores[0], chip.Ext(), data, j.Config.Params, j.Config.Box); err != nil {
			return bench.Result{}, err
		}
		return bench.Result{
			Name: j.Name, Title: "test FFBP point",
			Pulses: pulses, Bins: bins,
			Data: ffbpPoint{Cores: 1, Seconds: chip.Time()},
		}, nil
	}
	return jobs, run
}

// TestSweepThroughput measures the engine's job throughput (1 vs 8
// workers over a 16-job cold sweep of host-serial jobs) and, when
// SWEEPBENCH_OUT names a directory, records it as a BENCH_sweep.json
// envelope — the `make sweepbench` target. Without the variable the
// measurement is skipped to keep the regular test suite fast. The
// speedup approaches min(8, GOMAXPROCS) on a multi-core host and ~1x on
// a single-CPU one, so it is recorded, not asserted.
func TestSweepThroughput(t *testing.T) {
	out := os.Getenv("SWEEPBENCH_OUT")
	if out == "" {
		t.Skip("SWEEPBENCH_OUT not set")
	}
	jobs, run := serialWorkload(t, 128, 121, 16)

	measure := func(workers int) time.Duration {
		start := time.Now()
		res, err := Run(context.Background(), jobs, Options{Workers: workers, Run: run})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("job %d: %v", i, r.Err)
			}
		}
		return time.Since(start)
	}

	t1 := measure(1)
	t8 := measure(8)
	speedup := t1.Seconds() / t8.Seconds()
	jobsPerSec := float64(len(jobs)) / t8.Seconds()
	t.Logf("16 jobs: 1 worker %v, 8 workers %v (%.2fx, %.1f jobs/s)", t1, t8, speedup, jobsPerSec)

	env := bench.Result{
		Name: "sweep", Title: "Sweep engine throughput",
		Pulses: 128, Bins: 121,
		Data: struct {
			Jobs        int     `json:"jobs"`
			HostCPUs    int     `json:"host_cpus"`
			SecondsJ1   float64 `json:"seconds_j1"`
			SecondsJ8   float64 `json:"seconds_j8"`
			Speedup     float64 `json:"speedup"`
			JobsPerSec  float64 `json:"jobs_per_sec"`
			RaceEnabled bool    `json:"race_enabled"`
		}{len(jobs), runtime.GOMAXPROCS(0), t1.Seconds(), t8.Seconds(), speedup, jobsPerSec, raceEnabled},
	}
	path, err := bench.WriteFile(out, env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
