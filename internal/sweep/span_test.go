package sweep

import (
	"context"
	"fmt"
	"testing"

	"sarmany/internal/bench"
	"sarmany/internal/obs"
)

// TestSweepRequestSpans pins the request-trace hook: when Options.SpanFor
// supplies a parent span for a job, the engine records cache.lookup and
// execute children under it, injects the execute span into the runner
// context, and a warm rerun records only a hit=true lookup (no execute).
func TestSweepRequestSpans(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{
		{Name: "a", Exp: "span-test", Extra: 1},
		{Name: "b", Exp: "span-test", Extra: 2},
	}
	sawSpan := make([]bool, len(jobs))
	run := func(ctx context.Context, j Job) (bench.Result, error) {
		sawSpan[j.Extra.(int)-1] = obs.SpanFromContext(ctx) != nil
		return bench.Result{Name: j.Name, Data: map[string]any{"x": j.Extra}}, nil
	}

	runPass := func() obs.TraceDoc {
		tr := obs.NewReqTrace(obs.TraceID{0xaa})
		roots := make([]*obs.ReqSpan, len(jobs))
		for i := range roots {
			roots[i] = tr.StartSpan(fmt.Sprintf("job%d", i))
		}
		_, err := Run(context.Background(), jobs, Options{
			Workers: 2, CacheDir: dir, Run: run,
			SpanFor: func(i int, j Job) *obs.ReqSpan { return roots[i] },
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range roots {
			r.End()
		}
		return tr.Doc()
	}

	countByName := func(doc obs.TraceDoc, name, hit string) int {
		n := 0
		for _, s := range doc.Spans {
			if s.Name == name && (hit == "" || s.Attrs["hit"] == hit) {
				n++
			}
		}
		return n
	}

	cold := runPass()
	if got := countByName(cold, "sweep.cache.lookup", "false"); got != len(jobs) {
		t.Errorf("cold run: %d miss lookups, want %d\n%+v", got, len(jobs), cold.Spans)
	}
	if got := countByName(cold, "sweep.execute", ""); got != len(jobs) {
		t.Errorf("cold run: %d execute spans, want %d", got, len(jobs))
	}
	for i, ok := range sawSpan {
		if !ok {
			t.Errorf("job %d: runner context carried no span", i)
		}
	}
	// Each job's spans must parent under its own root.
	parents := map[string]string{}
	for _, s := range cold.Spans {
		parents[s.ID] = s.Parent
	}
	byName := map[string]obs.TraceSpan{}
	for _, s := range cold.Spans {
		if s.Name == "job0" || s.Name == "job1" {
			byName[s.Name] = s
		}
	}
	for _, s := range cold.Spans {
		if s.Name == "sweep.cache.lookup" || s.Name == "sweep.execute" {
			if s.Parent != byName["job0"].ID && s.Parent != byName["job1"].ID {
				t.Errorf("%s span parented to %q, not a job root", s.Name, s.Parent)
			}
		}
	}

	warm := runPass()
	if got := countByName(warm, "sweep.cache.lookup", "true"); got != len(jobs) {
		t.Errorf("warm run: %d hit lookups, want %d\n%+v", got, len(jobs), warm.Spans)
	}
	if got := countByName(warm, "sweep.execute", ""); got != 0 {
		t.Errorf("warm run: %d execute spans, want 0", got)
	}
}

// TestSweepSpansOptional pins that sweeps without SpanFor (and SpanFor
// returning nil) run exactly as before — tracing is strictly opt-in.
func TestSweepSpansOptional(t *testing.T) {
	run := func(ctx context.Context, j Job) (bench.Result, error) {
		return bench.Result{Name: j.Name, Data: map[string]any{"x": 1}}, nil
	}
	jobs := []Job{{Name: "a", Exp: "span-test-nil"}}
	for _, spanFor := range []func(int, Job) *obs.ReqSpan{
		nil,
		func(int, Job) *obs.ReqSpan { return nil },
	} {
		res, err := Run(context.Background(), jobs, Options{Run: run, SpanFor: spanFor})
		if err != nil || res[0].Err != nil {
			t.Fatalf("untraced sweep failed: %v / %v", err, res[0].Err)
		}
	}
}
