package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"sarmany/internal/bench"
	"sarmany/internal/emu"
	"sarmany/internal/kernels"
	"sarmany/internal/report"
	"sarmany/internal/sar"
	"sarmany/internal/sweep"
)

// servePoint is one offered-load measurement of the saturation curve.
type servePoint struct {
	OfferedJobsPerSec float64 `json:"offered_jobs_per_sec"`
	Jobs              int     `json:"jobs"`
	Distinct          int     `json:"distinct"`
	Completed         int     `json:"completed"`
	Failed            int     `json:"failed"`
	// Executed counts fresh simulations; everything else was served by
	// in-flight dedup or the content-addressed cache.
	Executed     int `json:"executed"`
	CacheHits    int `json:"cache_hits"`
	Deduplicated int `json:"deduplicated"`
	// CacheHitRatio is the fraction of jobs served without a fresh
	// simulation: 1 - executed/completed.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	P50Seconds    float64 `json:"p50_seconds"`
	P99Seconds    float64 `json:"p99_seconds"`
	JobsPerSec    float64 `json:"jobs_per_sec"`
}

// serveBenchData is the BENCH_serve.json payload.
type serveBenchData struct {
	HostCPUs    int          `json:"host_cpus"`
	RaceEnabled bool         `json:"race_enabled"`
	Points      []servePoint `json:"points"`
	// Warm reruns the last point's job set against its now-warm cache on
	// a fresh server: every result must replay without simulation.
	Warm servePoint `json:"warm"`
}

// benchRunner is a real (simulated-chip) workload: a parallel FFBP run
// on a 64x61 dataset, cycle-accounted rather than wall-clock timed, so
// equal jobs produce byte-identical envelopes.
func benchRunner(tb testing.TB) sweep.RunFunc {
	tb.Helper()
	p := sar.DefaultParams()
	p.NumPulses, p.NumBins, p.R0 = 64, 61, 500
	box := report.DefaultBox(p)
	data := sar.Simulate(p, sar.SixTargetScene(p), nil)
	return func(ctx context.Context, j sweep.Job) (bench.Result, error) {
		if err := ctx.Err(); err != nil {
			return bench.Result{}, err
		}
		chip := emu.New(emu.E16G3())
		if _, _, err := kernels.ParFFBP(chip, 4, data, p, box); err != nil {
			return bench.Result{}, err
		}
		return bench.Result{
			Name: "serve-ffbp", Title: "served FFBP point",
			Pulses: p.NumPulses, Bins: p.NumBins,
			Data: struct {
				Seconds float64 `json:"seconds"`
			}{chip.Time()},
		}, nil
	}
}

// loadPoint drives one offered-load measurement: jobs submissions paced
// at rate against a fresh server over cacheDir, each a synchronous
// (?wait=1) POST whose wall clock is the end-to-end latency.
func loadPoint(t *testing.T, run sweep.RunFunc, cacheDir string, rate float64, jobs, distinct int) servePoint {
	t.Helper()
	s := NewServer(Options{
		Workers: 4, BatchSize: 8, MaxWait: 5 * time.Millisecond,
		QueueLimit: 4 * jobs, // admission losses would skew the latency sample
		CacheDir:   cacheDir,
		Run:        run,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	interval := time.Duration(float64(time.Second) / rate)
	latencies := make([]float64, jobs)
	errs := make([]error, jobs)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * interval) // the offered arrival process
			spec := fmt.Sprintf(`{"exp": "gbp", "tag": "job-%02d"}`, i%distinct)
			t0 := time.Now()
			resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(spec))
			if err != nil {
				errs[i] = err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			latencies[i] = time.Since(t0).Seconds()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	reg := s.Registry()
	completed := int(reg.Counter("serve.jobs.completed").Value())
	executed := int(reg.Counter("sweep.jobs.executed").Value())
	pt := servePoint{
		OfferedJobsPerSec: rate,
		Jobs:              jobs,
		Distinct:          distinct,
		Completed:         completed,
		Failed:            int(reg.Counter("serve.jobs.failed").Value()),
		Executed:          executed,
		CacheHits:         int(reg.Counter("serve.jobs.cachehits").Value()),
		Deduplicated:      int(reg.Counter("serve.jobs.deduplicated").Value()),
		P50Seconds:        sorted[len(sorted)/2],
		P99Seconds:        sorted[(len(sorted)*99)/100],
		JobsPerSec:        float64(jobs) / wall,
	}
	if served := completed + pt.Deduplicated; served > 0 {
		pt.CacheHitRatio = 1 - float64(executed)/float64(served)
	}
	if got := completed + pt.Deduplicated; got != jobs {
		t.Errorf("rate %.0f: completed %d + deduplicated %d != %d submitted",
			rate, completed, pt.Deduplicated, jobs)
	}
	if pt.Failed != 0 {
		t.Errorf("rate %.0f: %d failed jobs", rate, pt.Failed)
	}
	return pt
}

// TestServeSaturation measures the server's saturation behavior (p50/p99
// end-to-end latency and jobs/sec at three offered loads, plus a
// warm-cache rerun) and, when SERVEBENCH_OUT names a directory, records
// it as a BENCH_serve.json envelope — the `make servebench` target.
// Without the variable the measurement is skipped to keep the regular
// suite fast. Latencies are wall clock and therefore advisory; the
// submitted/executed/cache-hit accounting is deterministic and gates.
func TestServeSaturation(t *testing.T) {
	out := os.Getenv("SERVEBENCH_OUT")
	if out == "" {
		t.Skip("SERVEBENCH_OUT not set")
	}
	run := benchRunner(t)
	const jobs, distinct = 24, 8

	data := serveBenchData{HostCPUs: runtime.GOMAXPROCS(0), RaceEnabled: raceEnabled}
	var lastCache string
	for _, rate := range []float64{25, 50, 100} {
		lastCache = filepath.Join(t.TempDir(), fmt.Sprintf("cache-%.0f", rate))
		pt := loadPoint(t, run, lastCache, rate, jobs, distinct)
		t.Logf("offered %.0f/s: p50 %.3fs p99 %.3fs, %.1f jobs/s, hit ratio %.3f",
			rate, pt.P50Seconds, pt.P99Seconds, pt.JobsPerSec, pt.CacheHitRatio)
		data.Points = append(data.Points, pt)
	}

	// Warm rerun: same job set, fresh server, the last point's cache.
	data.Warm = loadPoint(t, run, lastCache, 100, jobs, distinct)
	t.Logf("warm rerun: hit ratio %.3f (executed %d)", data.Warm.CacheHitRatio, data.Warm.Executed)
	if data.Warm.Executed != 0 {
		t.Errorf("warm rerun executed %d simulations, want 0", data.Warm.Executed)
	}
	if data.Warm.CacheHitRatio <= 0.9 {
		t.Errorf("warm cache-hit ratio = %.3f, want > 0.9", data.Warm.CacheHitRatio)
	}

	env := bench.Result{
		Name: "serve", Title: "Job server saturation",
		Pulses: 64, Bins: 61,
		Data: data,
	}
	path, err := bench.WriteFile(out, env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
