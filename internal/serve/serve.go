// Package serve is the SAR-as-a-service layer: a long-running job
// server that accepts image-formation and sweep jobs over HTTP/JSON,
// coalesces them through a bounded batcher (batch-size + max-wait flush,
// per-request result channels), and executes them on the
// internal/sweep pool with the content-addressed result cache as a
// shared store — duplicate submissions are single-flighted across
// tenants and replay byte-identical envelopes.
//
// Admission control happens in three stages, each with a typed error
// and an HTTP backpressure mapping:
//
//   - draining:   *DrainingError  -> 503 + Retry-After
//   - quota:      *QuotaError     -> 429 + Retry-After (per-tenant token bucket)
//   - queue full: *QueueFullError -> 429 + Retry-After (bounded batcher queue)
//
// Job identifiers are content addresses (a prefix of the sweep cache
// key), so resubmitting the same job is idempotent: the second POST
// attaches to the first record, and a completed job's result serves
// straight from memory or the shared cache. Request deadlines propagate
// via context.Context into the executing kernels; graceful drain stops
// admission, flushes in-flight batches and appends a final ledger
// entry. Every completed job is recorded in the internal/telemetry run
// ledger, and the obs registry behind /metrics carries serve.* and
// sweep.* series for scrape tooling.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"strconv"
	"time"

	"sarmany/internal/bench"
	"sarmany/internal/obs"
	"sarmany/internal/report"
	"sarmany/internal/sweep"
	"sarmany/internal/telemetry"
)

// JobSpec is the POST /v1/jobs request body: which experiment to run, at
// which scale, for which tenant.
type JobSpec struct {
	// Exp selects the workload — any cmd/benchtab experiment key
	// (bench.Keys lists them: t1, fig7, scaling, bw, interp, pipes, gbp,
	// base, rda, upsample, chaos).
	Exp string `json:"exp"`
	// Scale is "small" (reduced, default) or "paper" (full paper scale).
	Scale string `json:"scale,omitempty"`
	// Tenant names the quota bucket this job draws from ("" = "default").
	Tenant string `json:"tenant,omitempty"`
	// Tag optionally distinguishes otherwise-identical jobs: it enters
	// the job's content address, so load generators can control how much
	// of their traffic deduplicates.
	Tag string `json:"tag,omitempty"`
	// TimeoutSeconds bounds the job's execution (0 = the server default).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// config resolves the spec's scale to an experiment configuration.
func (s JobSpec) config() (report.Config, error) {
	switch s.Scale {
	case "", "small":
		return report.Small(), nil
	case "paper":
		return report.Default(), nil
	}
	return report.Config{}, &SpecError{Msg: fmt.Sprintf("unknown scale %q (want \"small\" or \"paper\")", s.Scale)}
}

// SpecError is the typed rejection for a malformed job specification —
// the HTTP layer maps it to 400 Bad Request.
type SpecError struct {
	// Msg says what is wrong with the spec.
	Msg string
}

// Error describes what is wrong with the spec.
func (e *SpecError) Error() string { return "serve: bad job spec: " + e.Msg }

// Options configures a Server.
type Options struct {
	// Workers bounds the sweep pool each batch executes on (<= 0 =
	// GOMAXPROCS).
	Workers int
	// CacheDir is the shared content-addressed result store; empty
	// disables caching (every job simulates).
	CacheDir string
	// BatchSize and MaxWait configure the batcher flush policy (see
	// BatcherOptions).
	BatchSize int
	MaxWait   time.Duration
	// QueueLimit bounds queued+executing requests (default 256).
	QueueLimit int
	// Quota is the per-tenant admission budget (zero = unlimited).
	Quota QuotaConfig
	// JobTimeout is the default per-job execution bound applied when a
	// spec carries no timeout_seconds (0 = none).
	JobTimeout time.Duration
	// LedgerDir receives one run-ledger entry per completed job plus the
	// final drain summary ("" disables recording).
	LedgerDir string
	// Metrics receives serve.* and sweep.* series (nil = a private
	// registry; Server.Registry exposes it either way).
	Metrics *obs.Registry
	// Salt overrides the content-address salt ("" = sweep.Salt).
	Salt string
	// Run overrides the job runner (nil = bench.Compute on the spec's
	// experiment). Tests use this to serve synthetic workloads.
	Run sweep.RunFunc
	// TraceSample is the head-based sampling probability for requests
	// arriving without a traceparent header: 1 traces every request, 0
	// (the zero value) disables request tracing entirely. An inbound
	// W3C traceparent header overrides the coin flip — its sampled flag
	// decides. Every request gets a trace ID either way; sampling only
	// controls whether a span tree is collected for it.
	TraceSample float64
	// SlowRequest logs a warning with per-stage timings for any request
	// whose end-to-end latency exceeds it (0 disables the slow log).
	SlowRequest time.Duration
	// Log receives the server's structured records — admission
	// rejections, dedup attaches, completions, the slow-request log —
	// each stamped with trace_id/tenant/job_id. Nil discards them.
	Log *slog.Logger
}

// serveMetrics bundles the server's registry instruments.
type serveMetrics struct {
	accepted, completed, failed, cacheHits     *obs.Counter
	rejQuota, rejQueue, rejDraining, dupAttach *obs.Counter
	queueDepth                                 *obs.Gauge
	batchJobs, jobSeconds, requestSeconds      *obs.Histogram
}

// Server is the batching job server. Create one with NewServer, mount
// Handler on an http.Server, and Drain it on shutdown.
type Server struct {
	opt     Options
	base    context.Context
	stop    context.CancelFunc
	batcher *Batcher
	store   *store
	quotas  *quotas
	reg     *obs.Registry
	m       serveMetrics
	started time.Time
	salt    string
	run     sweep.RunFunc
	log     *slog.Logger

	drainCh chan struct{} // closed when Drain begins
}

// NewServer returns a ready-to-serve job server.
func NewServer(opt Options) *Server {
	reg := opt.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	salt := opt.Salt
	if salt == "" {
		salt = sweep.Salt
	}
	run := opt.Run
	if run == nil {
		run = func(ctx context.Context, j sweep.Job) (bench.Result, error) {
			return bench.Compute(ctx, j.Exp, j.Config, "")
		}
	}
	lg := opt.Log
	if lg == nil {
		lg = slog.New(slog.DiscardHandler)
	}
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		opt:     opt,
		base:    base,
		stop:    stop,
		store:   newStore(),
		quotas:  newQuotas(opt.Quota),
		reg:     reg,
		started: time.Now(),
		salt:    salt,
		run:     run,
		log:     lg,
		drainCh: make(chan struct{}),
		m: serveMetrics{
			accepted:       reg.Counter("serve.jobs.accepted"),
			completed:      reg.Counter("serve.jobs.completed"),
			failed:         reg.Counter("serve.jobs.failed"),
			cacheHits:      reg.Counter("serve.jobs.cachehits"),
			rejQuota:       reg.Counter("serve.jobs.rejected.quota"),
			rejQueue:       reg.Counter("serve.jobs.rejected.queue"),
			rejDraining:    reg.Counter("serve.jobs.rejected.draining"),
			dupAttach:      reg.Counter("serve.jobs.deduplicated"),
			queueDepth:     reg.Gauge("serve.queue.depth"),
			batchJobs:      reg.Histogram("serve.batch.jobs"),
			jobSeconds:     reg.Histogram("serve.job.seconds"),
			requestSeconds: reg.Histogram("serve.request.seconds"),
		},
	}
	s.batcher = NewBatcher(BatcherOptions{
		BatchSize:  opt.BatchSize,
		MaxWait:    opt.MaxWait,
		QueueLimit: opt.QueueLimit,
		RetryAfter: s.retryAfterHint,
		Exec:       s.execBatch,
	})
	return s
}

// Registry exposes the server's metric registry (the /metrics and
// /debug/vars source).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// coldRetryAfter is the backoff hint when the p50 projection has
// nothing to stand on: a cold server's serve.job.seconds histogram has
// no samples, so its median is NaN (and an all-subsecond history can
// round to 0). Both must map to a short, sane default — never a
// Retry-After of 0, which clients read as "hammer immediately".
const coldRetryAfter = time.Second

// retryAfterHint estimates how long a rejected client should back off:
// the time for the current queue to clear at the observed median job
// rate, clamped to [coldRetryAfter, 60s]. With no latency history (or
// an empty queue) it suggests coldRetryAfter.
func (s *Server) retryAfterHint() time.Duration {
	depth := s.batcher.Depth()
	p50 := s.m.jobSeconds.Quantile(0.5)
	workers := s.opt.Workers
	if workers <= 0 {
		workers = 1
	}
	if math.IsNaN(p50) || p50 <= 0 || depth == 0 {
		return coldRetryAfter
	}
	sec := math.Ceil(float64(depth) * p50 / float64(workers))
	if d := time.Duration(math.Min(math.Max(sec, 1), 60)) * time.Second; d > coldRetryAfter {
		return d
	}
	return coldRetryAfter
}

// JobID computes a spec's content-addressed identifier without
// submitting it: a 16-hex-character prefix of the sweep cache key over
// the spec's experiment, configuration, tag and the server salt.
func (s *Server) JobID(spec JobSpec) (string, sweep.Job, error) {
	cfg, err := spec.config()
	if err != nil {
		return "", sweep.Job{}, err
	}
	job := sweep.Job{Name: spec.Exp, Exp: spec.Exp, Config: cfg}
	if spec.Tag != "" {
		job.Extra = map[string]string{"tag": spec.Tag}
	}
	key, err := sweep.Key(job, s.salt)
	if err != nil {
		return "", sweep.Job{}, err
	}
	return key[:16], job, nil
}

// traceIDKey carries the request's assigned trace identifier through
// the submission context even when the request is unsampled (no
// *obs.ReqTrace) — logs and records still want the correlation key.
type traceIDKey struct{}

// ContextWithTraceID returns a context carrying an externally assigned
// trace identifier for the submission (the HTTP layer sets it from the
// inbound traceparent header or a fresh random ID). Submit mints its
// own when the context carries none.
func ContextWithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// submitTraceID resolves the submission's trace identity from ctx: an
// explicit ID, else the sampled trace's, else a fresh one.
func submitTraceID(ctx context.Context, tr *obs.ReqTrace) string {
	if id, _ := ctx.Value(traceIDKey{}).(string); id != "" {
		return id
	}
	if tr != nil {
		return tr.TraceID().String()
	}
	return obs.NewTraceID().String()
}

// Submit runs the admission pipeline for one spec: draining check,
// tenant quota, content-address lookup (an existing live record attaches
// without executing), then the bounded batcher. The returned JobInfo is
// the record's current state; rec.done (via WaitDone) resolves when the
// job completes.
//
// ctx carries the request's trace identity only (see ContextWithTraceID
// and obs.ContextWithTrace): a sampled request records admission,
// queue.wait, singleflight.join, execute and ledger.write stage spans
// into its trace. Execution itself runs on the server's own context —
// cancelling ctx does not cancel the job (shared work survives a
// submitter's disconnect).
func (s *Server) Submit(ctx context.Context, spec JobSpec) (JobInfo, error) {
	tr := obs.TraceFromContext(ctx)
	tid := submitTraceID(ctx, tr)
	tenant := tenantOf(spec)
	root := tr.StartSpan("request")
	root.SetAttr("exp", spec.Exp)
	root.SetAttr("tenant", tenant)
	adm := root.Child("admission")
	reject := func(reason string, err error) (JobInfo, error) {
		adm.SetAttr("rejected", reason)
		adm.End()
		root.SetAttr("outcome", "rejected")
		root.End()
		s.log.Info("job rejected",
			"trace_id", tid, "tenant", tenant, "reason", reason, "err", err.Error())
		return JobInfo{}, err
	}
	if s.Draining() {
		s.m.rejDraining.Add(1)
		return reject("draining", &DrainingError{})
	}
	if !knownExp(spec.Exp) {
		return reject("spec", &SpecError{Msg: fmt.Sprintf("unknown experiment %q (want one of %v)", spec.Exp, bench.Keys())})
	}
	id, job, err := s.JobID(spec)
	if err != nil {
		return reject("spec", err)
	}
	adm.SetAttr("job_id", id)
	// attach resolves a duplicate submission onto an existing record:
	// a singleflight.join span instead of queue/execute stages, since
	// this request does no further work of its own.
	attach := func(info JobInfo) (JobInfo, error) {
		s.m.dupAttach.Add(1)
		adm.End()
		join := root.Child("singleflight.join")
		join.SetAttr("job_id", id)
		if info.TraceID != "" {
			join.SetAttr("owner_trace_id", info.TraceID)
		}
		join.End()
		root.SetAttr("outcome", "deduplicated")
		root.End()
		s.log.Debug("job deduplicated",
			"trace_id", tid, "tenant", tenant, "job_id", id, "owner_trace_id", info.TraceID)
		return info, nil
	}
	// An existing live record single-flights the duplicate before it
	// costs quota or a queue slot.
	if rec, ok := s.store.get(id); ok {
		if info := rec.snapshot(); info.Status != StatusFailed {
			return attach(info)
		}
	}
	if err := s.quotas.admit(tenant, time.Now()); err != nil {
		s.m.rejQuota.Add(1)
		return reject("quota", err)
	}
	rec, fresh := s.store.admit(id, spec, tid, time.Now())
	if !fresh {
		return attach(rec.snapshot())
	}
	adm.End()

	timeout := s.opt.JobTimeout
	if spec.TimeoutSeconds > 0 {
		timeout = time.Duration(spec.TimeoutSeconds * float64(time.Second))
	}
	// Execution deliberately runs on the server's context, not the
	// submitter's: shared (single-flighted) work must survive one
	// client's disconnect.
	execCtx := s.base
	var cancel context.CancelFunc
	if timeout > 0 {
		execCtx, cancel = context.WithTimeout(execCtx, timeout)
	}
	// The trace handles ride the record from here on: the batcher can
	// flush this request on its own goroutine the moment Submit returns,
	// so they must be attached before the queue is entered.
	queue := root.Child("queue.wait")
	rec.setTrace(traceState{trace: tr, root: root, queue: queue})
	req, err := s.batcher.Submit(execCtx, id, job)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		// Roll the record back so a retry after backoff re-admits.
		rec.complete(nil, false, 0, err.Error(), "")
		queue.SetAttr("rejected", "queue_full")
		queue.End()
		root.SetAttr("outcome", "rejected")
		root.End()
		if _, ok := err.(*QueueFullError); ok {
			s.m.rejQueue.Add(1)
		}
		s.log.Info("job rejected",
			"trace_id", tid, "tenant", tenant, "job_id", id, "reason", "queue_full", "err", err.Error())
		return JobInfo{}, err
	}
	if cancel != nil {
		// The batcher cancels the request context on delivery; release
		// the timeout timer right behind it.
		context.AfterFunc(req.Context(), cancel)
	}
	s.m.accepted.Add(1)
	s.m.queueDepth.Set(float64(s.batcher.Depth()))
	s.log.Debug("job accepted",
		"trace_id", tid, "tenant", tenant, "job_id", id, "exp", spec.Exp, "queue_depth", s.batcher.Depth())
	return rec.snapshot(), nil
}

// WaitDone blocks until the job with id completes (or ctx is done) and
// returns its final info.
func (s *Server) WaitDone(ctx context.Context, id string) (JobInfo, error) {
	rec, ok := s.store.get(id)
	if !ok {
		return JobInfo{}, fmt.Errorf("serve: no job %s", id)
	}
	select {
	case <-rec.done:
		return rec.snapshot(), nil
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
}

// Info returns the current state of job id.
func (s *Server) Info(id string) (JobInfo, bool) {
	rec, ok := s.store.get(id)
	if !ok {
		return JobInfo{}, false
	}
	return rec.snapshot(), true
}

// Result returns the completed job's envelope bytes and info.
func (s *Server) Result(id string) ([]byte, JobInfo, bool) {
	rec, ok := s.store.get(id)
	if !ok {
		return nil, JobInfo{}, false
	}
	raw, info := rec.result()
	return raw, info, true
}

// execBatch executes one flushed batch on the sweep pool. Each batch
// slot's Name carries its index so the runner can recover the request
// and honor its context (per-request deadline) inside the kernel.
func (s *Server) execBatch(batch []*Request) {
	s.m.batchJobs.Observe(float64(len(batch)))
	flushed := time.Now()
	jobs := make([]sweep.Job, len(batch))
	forms := make([]*obs.ReqSpan, len(batch))
	for i, r := range batch {
		jobs[i] = r.Job
		jobs[i].Name = strconv.Itoa(i)
		if rec, ok := s.store.get(r.ID); ok {
			rec.setRunning()
			forms[i] = rec.beginExec(len(batch))
		}
	}
	for _, f := range forms {
		f.End()
	}
	results, err := sweep.Run(s.base, jobs, sweep.Options{
		Workers:  s.opt.Workers,
		CacheDir: s.opt.CacheDir,
		Metrics:  s.reg,
		Salt:     s.salt,
		// Batch slots map 1:1 onto sweep input indices, so the sweep's
		// cache-lookup/execute spans nest under each request's execute
		// stage span.
		SpanFor: func(i int, j sweep.Job) *obs.ReqSpan {
			if i < 0 || i >= len(batch) {
				return nil
			}
			if rec, ok := s.store.get(batch[i].ID); ok {
				return rec.traceHandles().exec
			}
			return nil
		},
		Run: func(ctx context.Context, j sweep.Job) (bench.Result, error) {
			i, aerr := strconv.Atoi(j.Name)
			if aerr != nil || i < 0 || i >= len(batch) {
				return bench.Result{}, fmt.Errorf("serve: lost batch slot %q", j.Name)
			}
			req := batch[i]
			jctx, cancel := joinContext(ctx, req.Context())
			defer cancel()
			orig := req.Job
			return s.run(jctx, orig)
		},
	})
	if err != nil {
		// Sweep-level failure (unusable cache dir): fail the whole batch.
		for _, r := range batch {
			r.deliver(sweep.JobResult{Job: r.Job, Err: err})
			s.finish(r, sweep.JobResult{Job: r.Job, Err: err}, flushed)
		}
		return
	}
	for i, r := range batch {
		res := results[i]
		r.deliver(res)
		s.finish(r, res, flushed)
	}
	s.m.queueDepth.Set(float64(s.batcher.Depth()))
}

// finish resolves the request's store record, updates counters, seals
// the request trace and records the completed job in the run ledger.
func (s *Server) finish(r *Request, res sweep.JobResult, flushed time.Time) {
	rec, ok := s.store.get(r.ID)
	if !ok {
		return
	}
	info := rec.snapshot()
	dur := res.Duration
	if dur == 0 {
		dur = time.Since(flushed)
	}
	s.m.jobSeconds.Observe(dur.Seconds())
	// serve.request.seconds is the end-to-end latency a submitter saw:
	// queueing (batch fill + max-wait) plus execution.
	wall := time.Since(info.SubmittedAt)
	s.m.requestSeconds.Observe(wall.Seconds())
	errMsg := ""
	if res.Err != nil {
		errMsg = res.Err.Error()
		s.m.failed.Add(1)
	} else {
		s.m.completed.Add(1)
		if res.Cached {
			s.m.cacheHits.Add(1)
		}
	}
	ts := rec.traceHandles()
	// On the sweep-level failure path beginExec never ran; end the
	// queue span here so the tree stays consistent (no-op otherwise).
	ts.queue.End()
	ts.exec.SetAttr("cached", strconv.FormatBool(res.Cached))
	if errMsg != "" {
		ts.exec.SetAttr("error", errMsg)
	}
	ts.exec.End()
	runID := s.recordJob(info, res, errMsg, ts)
	level := slog.LevelDebug
	if s.opt.SlowRequest > 0 && wall > s.opt.SlowRequest {
		level = slog.LevelWarn
	}
	s.log.Log(context.Background(), level, "job finished",
		"trace_id", info.TraceID, "tenant", tenantOf(info.Spec), "job_id", r.ID,
		"exp", info.Spec.Exp, "cached", res.Cached, "failed", errMsg != "",
		"wall_seconds", wall.Seconds(), "exec_seconds", dur.Seconds(),
		"queue_seconds", (wall - dur).Seconds(), "slow", level == slog.LevelWarn)
	rec.complete(res.Raw, res.Cached, dur, errMsg, runID)
}

// recordJob appends one completed-job entry to the run ledger
// (best-effort: a ledger failure never fails the job it describes). It
// also owns the end of the request trace: a ledger.write span covers
// entry assembly, then the root span ends and the sealed span tree is
// embedded in the entry — so the tree the ledger stores includes every
// stage, at the price of the final disk write itself falling just
// outside its own span.
func (s *Server) recordJob(info JobInfo, res sweep.JobResult, errMsg string, ts traceState) string {
	spec := info.Spec
	if s.opt.LedgerDir == "" {
		ts.root.End()
		return ""
	}
	lw := ts.root.Child("ledger.write")
	e, err := telemetry.NewEntry("sarserve.job", time.Now(), map[string]any{
		"exp": spec.Exp, "scale": spec.Scale, "tag": spec.Tag,
	}, "exp="+spec.Exp, "tenant="+tenantOf(spec))
	if err != nil {
		lw.End()
		ts.root.End()
		return ""
	}
	e.WallSeconds = res.Duration.Seconds()
	e.TraceID = info.TraceID
	e.Extra = map[string]any{
		"job_id": info.ID,
		"tenant": tenantOf(spec),
		"cached": res.Cached,
		"failed": errMsg != "",
	}
	if errMsg != "" {
		e.Extra["error"] = errMsg
	}
	if len(res.Raw) > 0 {
		e.Envelope = res.Raw
	}
	lw.End()
	ts.root.End()
	if ts.trace != nil {
		if doc := ts.trace.Doc(); len(doc.Spans) > 0 {
			if b, jerr := json.Marshal(doc); jerr == nil {
				e.Trace = b
			}
		}
	}
	runID, err := telemetry.Record(s.opt.LedgerDir, e)
	if err != nil {
		s.log.Warn("ledger write failed",
			"trace_id", info.TraceID, "job_id", info.ID, "err", err.Error())
		return ""
	}
	return runID
}

// Drain gracefully shuts the server down: admission stops (readyz turns
// 503, POST /v1/jobs returns 503 + Retry-After), the pending partial
// batch flushes, in-flight jobs run to completion (bounded by ctx), and
// a final summary entry lands in the run ledger. Jobs still running when
// ctx expires are cancelled.
func (s *Server) Drain(ctx context.Context) error {
	select {
	case <-s.drainCh:
	default:
		close(s.drainCh)
	}
	err := s.batcher.Close(ctx)
	if err != nil {
		s.stop() // cut the stragglers loose before the process exits
	}
	s.recordDrain(err)
	return err
}

// recordDrain appends the final drain summary to the run ledger.
func (s *Server) recordDrain(drainErr error) {
	if s.opt.LedgerDir == "" {
		return
	}
	e, err := telemetry.NewEntry("sarserve", s.started, map[string]any{
		"workers":     s.opt.Workers,
		"batch_size":  s.opt.BatchSize,
		"queue_limit": s.opt.QueueLimit,
		"quota_jps":   s.opt.Quota.JobsPerSec,
	})
	if err != nil {
		return
	}
	e.Metrics = telemetry.MetricsMap(s.reg.Snapshot())
	e.Extra = map[string]any{
		"jobs_stored": s.store.len(),
		"drain_clean": drainErr == nil,
	}
	_, _ = telemetry.Record(s.opt.LedgerDir, e)
}

// knownExp reports whether exp is a built-in benchmark experiment key.
func knownExp(exp string) bool {
	for _, k := range bench.Keys() {
		if k == exp {
			return true
		}
	}
	return false
}

// tenantOf resolves the spec's quota bucket name.
func tenantOf(spec JobSpec) string {
	if spec.Tenant == "" {
		return "default"
	}
	return spec.Tenant
}

// joinContext derives a context cancelled when either parent is done —
// how a per-request deadline composes with the server's base context
// inside the sweep runner. b's deadline carries over as a real deadline,
// so an overrun surfaces as context.DeadlineExceeded, not a bare cancel.
func joinContext(a, b context.Context) (context.Context, context.CancelFunc) {
	var ctx context.Context
	var cancel context.CancelFunc
	if dl, ok := b.Deadline(); ok {
		ctx, cancel = context.WithDeadline(a, dl)
	} else {
		ctx, cancel = context.WithCancel(a)
	}
	stop := context.AfterFunc(b, func() {
		// When b ended on its deadline, the joined context carries the
		// same deadline and its own timer reports DeadlineExceeded;
		// cancelling here would race it and misreport Canceled.
		if !errors.Is(b.Err(), context.DeadlineExceeded) {
			cancel()
		}
	})
	return ctx, func() { stop(); cancel() }
}
