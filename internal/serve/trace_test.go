package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sarmany/internal/obs"
	"sarmany/internal/telemetry"
)

var hex32 = regexp.MustCompile(`^[0-9a-f]{32}$`)

// postTraced submits a spec with an optional traceparent header and
// returns the status, decoded record, response header and client-side
// wall clock.
func postTraced(t *testing.T, ts *httptest.Server, spec, traceparent string, wait bool) (int, JobInfo, http.Header, time.Duration) {
	t.Helper()
	url := ts.URL + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	t0 := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(t0)
	defer resp.Body.Close()
	var info JobInfo
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode, info, resp.Header, wall
}

// jobEntry finds the sarserve.job ledger entry for a job id.
func jobEntry(t *testing.T, dir, jobID string) telemetry.Entry {
	t.Helper()
	entries, err := telemetry.Open(dir).List()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Tool == "sarserve.job" && e.Extra["job_id"] == jobID {
			return e
		}
	}
	t.Fatalf("no sarserve.job entry for %s in %d entries", jobID, len(entries))
	return telemetry.Entry{}
}

// TestTraceEndToEnd submits one traced job over HTTP and checks the
// whole tentpole contract: the response carries the trace ID, the
// ledger entry embeds a span tree covering every pipeline stage, and
// the stage durations reconcile with the request wall clock.
func TestTraceEndToEnd(t *testing.T) {
	var execs atomic.Int64
	dir := t.TempDir()
	s := NewServer(Options{
		Workers: 2, BatchSize: 1, MaxWait: time.Millisecond,
		CacheDir: t.TempDir(), LedgerDir: dir,
		TraceSample: 1,
		Run:         stubRunner(&execs, 10*time.Millisecond),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, info, hdr, wall := postTraced(t, ts, `{"exp": "gbp"}`, "", true)
	if status != http.StatusOK || info.Status != StatusDone {
		t.Fatalf("submit = %d %+v", status, info)
	}
	tid := hdr.Get("X-Trace-Id")
	if !hex32.MatchString(tid) {
		t.Fatalf("X-Trace-Id = %q, want 32 hex chars", tid)
	}
	if info.TraceID != tid {
		t.Fatalf("record trace_id %q != header %q", info.TraceID, tid)
	}

	e := jobEntry(t, dir, info.ID)
	if e.TraceID != tid {
		t.Fatalf("ledger trace_id %q != %q", e.TraceID, tid)
	}
	if len(e.Trace) == 0 {
		t.Fatal("ledger entry has no embedded trace")
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(e.Trace, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != tid {
		t.Fatalf("trace doc id %q != %q", doc.TraceID, tid)
	}

	byName := map[string]obs.TraceSpan{}
	for _, sp := range doc.Spans {
		byName[sp.Name] = sp
	}
	for _, stage := range []string{
		"request", "admission", "queue.wait", "execute", "batch.form",
		"sweep.cache.lookup", "sweep.execute", "ledger.write",
	} {
		if _, ok := byName[stage]; !ok {
			t.Errorf("stage %q missing from trace (have %v)", stage, names(doc))
		}
	}
	root := byName["request"]
	if root.Attrs["exp"] != "gbp" || root.Attrs["tenant"] != "default" {
		t.Errorf("root attrs = %v", root.Attrs)
	}
	if byName["sweep.cache.lookup"].Attrs["hit"] != "false" {
		t.Errorf("cold lookup attrs = %v", byName["sweep.cache.lookup"].Attrs)
	}
	if byName["execute"].Attrs["batch_jobs"] != "1" {
		t.Errorf("execute attrs = %v", byName["execute"].Attrs)
	}

	// Reconciliation: every direct stage lies inside the root window,
	// the stages are disjoint in sequence, their sum is bounded by the
	// root duration, and the root is bounded by the client wall clock.
	rootEnd := root.StartUnixNs + root.DurNs
	var stageSum int64
	for _, stage := range []string{"admission", "queue.wait", "execute", "ledger.write"} {
		sp := byName[stage]
		if sp.StartUnixNs < root.StartUnixNs || sp.StartUnixNs+sp.DurNs > rootEnd {
			t.Errorf("%s outside the root window", stage)
		}
		stageSum += sp.DurNs
	}
	if stageSum > root.DurNs {
		t.Errorf("stage sum %dns exceeds root %dns", stageSum, root.DurNs)
	}
	if root.DurNs > wall.Nanoseconds() {
		t.Errorf("root %dns exceeds client wall %dns", root.DurNs, wall.Nanoseconds())
	}
	// The 10ms stub delay must show up in the execute stage.
	if byName["execute"].DurNs < (8 * time.Millisecond).Nanoseconds() {
		t.Errorf("execute = %dns, want >= ~10ms of stub work", byName["execute"].DurNs)
	}
	// queue.wait ends where the execute stage begins (within scheduling
	// slop): the two stages partition the post-admission timeline.
	qEnd := byName["queue.wait"].StartUnixNs + byName["queue.wait"].DurNs
	if gap := byName["execute"].StartUnixNs - qEnd; gap < 0 || gap > (5*time.Millisecond).Nanoseconds() {
		t.Errorf("queue.wait -> execute gap = %dns", gap)
	}

	// A warm resubmission with a distinct trace joins via singleflight
	// only if still live; here the job completed, so a fresh POST
	// attaches to the done record and keeps the owner's trace ID in the
	// body while the header carries the new request's own ID.
	status2, info2, hdr2, _ := postTraced(t, ts, `{"exp": "gbp"}`, "", true)
	if status2 != http.StatusOK {
		t.Fatalf("resubmit = %d", status2)
	}
	if info2.TraceID != tid {
		t.Errorf("attached record trace_id %q, want owner %q", info2.TraceID, tid)
	}
	if got := hdr2.Get("X-Trace-Id"); got == tid || !hex32.MatchString(got) {
		t.Errorf("attached request X-Trace-Id = %q, want a fresh id", got)
	}
}

func names(doc obs.TraceDoc) []string {
	out := make([]string, len(doc.Spans))
	for i, s := range doc.Spans {
		out[i] = s.Name
	}
	return out
}

// TestTraceparentInbound pins W3C context propagation: the server
// adopts the inbound trace ID, parents its root span under the
// caller's span, and honors the sampled flag in both directions.
func TestTraceparentInbound(t *testing.T) {
	var execs atomic.Int64
	dir := t.TempDir()
	s := NewServer(Options{
		Workers: 1, BatchSize: 1, MaxWait: time.Millisecond,
		LedgerDir: dir,
		// TraceSample 0: only the inbound flag can turn tracing on.
		Run: stubRunner(&execs, 0),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const parentSpan = "00f067aa0ba902b7"
	inboundID := obs.NewTraceID()
	header := "00-" + inboundID.String() + "-" + parentSpan + "-01"
	status, info, hdr, _ := postTraced(t, ts, `{"exp": "gbp", "tag": "sampled"}`, header, true)
	if status != http.StatusOK {
		t.Fatalf("submit = %d", status)
	}
	if got := hdr.Get("X-Trace-Id"); got != inboundID.String() {
		t.Fatalf("X-Trace-Id = %q, want inbound %q", got, inboundID)
	}
	e := jobEntry(t, dir, info.ID)
	if e.TraceID != inboundID.String() || len(e.Trace) == 0 {
		t.Fatalf("ledger trace_id=%q trace bytes=%d, want inbound id with a tree", e.TraceID, len(e.Trace))
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(e.Trace, &doc); err != nil {
		t.Fatal(err)
	}
	for _, sp := range doc.Spans {
		if sp.Name == "request" && sp.Parent != parentSpan {
			t.Errorf("root parent = %q, want caller span %q", sp.Parent, parentSpan)
		}
	}

	// flags 00: the ID is adopted but no span tree is collected.
	unsampledID := obs.NewTraceID()
	header = "00-" + unsampledID.String() + "-" + parentSpan + "-00"
	status, info, hdr, _ = postTraced(t, ts, `{"exp": "gbp", "tag": "unsampled"}`, header, true)
	if status != http.StatusOK {
		t.Fatalf("unsampled submit = %d", status)
	}
	if got := hdr.Get("X-Trace-Id"); got != unsampledID.String() {
		t.Fatalf("unsampled X-Trace-Id = %q, want %q", got, unsampledID)
	}
	e = jobEntry(t, dir, info.ID)
	if e.TraceID != unsampledID.String() {
		t.Errorf("unsampled ledger trace_id = %q, want %q", e.TraceID, unsampledID)
	}
	if len(e.Trace) != 0 {
		t.Errorf("unsampled request recorded a %d-byte trace", len(e.Trace))
	}
}

// TestTraceSampleZero pins the default-off contract the serving
// benchmark depends on: without TraceSample and without an inbound
// header, no span tree is collected — but every response still
// carries a usable trace ID.
func TestTraceSampleZero(t *testing.T) {
	var execs atomic.Int64
	dir := t.TempDir()
	s := NewServer(Options{
		Workers: 1, BatchSize: 1, MaxWait: time.Millisecond,
		LedgerDir: dir, Run: stubRunner(&execs, 0),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, info, hdr, _ := postTraced(t, ts, `{"exp": "gbp"}`, "", true)
	if status != http.StatusOK {
		t.Fatalf("submit = %d", status)
	}
	if !hex32.MatchString(hdr.Get("X-Trace-Id")) {
		t.Errorf("X-Trace-Id = %q, want 32 hex chars", hdr.Get("X-Trace-Id"))
	}
	if info.TraceID != hdr.Get("X-Trace-Id") {
		t.Errorf("record trace_id %q != header %q", info.TraceID, hdr.Get("X-Trace-Id"))
	}
	if e := jobEntry(t, dir, info.ID); len(e.Trace) != 0 {
		t.Errorf("unsampled server recorded a %d-byte trace", len(e.Trace))
	}
}

// TestSubmitAssignsTraceID pins that direct (non-HTTP) submissions get
// trace IDs too: the ID is minted in Submit when the context carries
// none.
func TestSubmitAssignsTraceID(t *testing.T) {
	var execs atomic.Int64
	s := NewServer(Options{
		Workers: 1, BatchSize: 1, MaxWait: time.Millisecond,
		Run: stubRunner(&execs, 0),
	})
	info, err := s.Submit(context.Background(), JobSpec{Exp: "gbp"})
	if err != nil {
		t.Fatal(err)
	}
	if !hex32.MatchString(info.TraceID) {
		t.Errorf("direct submit trace_id = %q, want 32 hex chars", info.TraceID)
	}
}

// TestRetryAfterHintCold pins the satellite fix: a cold server (no
// completed jobs, so serve.job.seconds quantiles to NaN) must hint a
// sane positive backoff, and an all-subsecond history must never round
// the hint below it.
func TestRetryAfterHintCold(t *testing.T) {
	s := NewServer(Options{Workers: 2})
	if got := s.retryAfterHint(); got != coldRetryAfter {
		t.Fatalf("cold hint = %v, want %v", got, coldRetryAfter)
	}
	s.m.jobSeconds.Observe(0.0001)
	if got := s.retryAfterHint(); got < coldRetryAfter {
		t.Fatalf("subsecond-history hint = %v, want >= %v", got, coldRetryAfter)
	}
}

// TestColdQueueFullRetryAfter drives the same edge through HTTP: the
// very first over-queue rejection of a cold server must carry
// Retry-After >= 1, never 0.
func TestColdQueueFullRetryAfter(t *testing.T) {
	var execs atomic.Int64
	s := NewServer(Options{
		Workers: 1, BatchSize: 1, MaxWait: time.Millisecond, QueueLimit: 1,
		Run: stubRunner(&execs, 200*time.Millisecond),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if status, _, _, _ := postTraced(t, ts, `{"exp": "gbp", "tag": "a"}`, "", false); status != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", status)
	}
	// Fill the queue until the bounded batcher rejects, while the first
	// job still blocks the only worker.
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; ; i++ {
		status, _, hdr, _ := postTraced(t, ts, `{"exp": "gbp", "tag": "b`+string(rune('a'+i%26))+`"}`, "", false)
		if status == http.StatusTooManyRequests {
			ra := hdr.Get("Retry-After")
			if ra == "" || ra == "0" {
				t.Fatalf("cold queue-full Retry-After = %q, want >= 1", ra)
			}
			return
		}
		if status != http.StatusAccepted {
			t.Fatalf("submit = %d", status)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
}
