package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sarmany/internal/bench"
	"sarmany/internal/sweep"
	"sarmany/internal/telemetry"
)

// stubRunner returns a fast deterministic runner that counts executions.
func stubRunner(executions *atomic.Int64, delay time.Duration) sweep.RunFunc {
	return func(ctx context.Context, j sweep.Job) (bench.Result, error) {
		executions.Add(1)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return bench.Result{}, ctx.Err()
			}
		}
		return bench.Result{
			Name: "gbp_vs_ffbp", Title: "stub",
			Data: bench.GBPFFBPResult{GBPSeconds: 2, FFBPSeconds: 1, Speedup: 2},
		}, nil
	}
}

// postJob submits a spec and decodes the response.
func postJob(t *testing.T, ts *httptest.Server, spec string, wait bool) (int, JobInfo, http.Header) {
	t.Helper()
	url := ts.URL + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info JobInfo
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(buf.Bytes(), &info); err != nil {
			t.Fatalf("decode %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, info, resp.Header
}

// TestServerSubmitWaitAndResult covers the happy path end to end:
// submit, wait, poll status, fetch the result envelope.
func TestServerSubmitWaitAndResult(t *testing.T) {
	var execs atomic.Int64
	s := NewServer(Options{
		Workers: 2, BatchSize: 2, MaxWait: 5 * time.Millisecond,
		Run: stubRunner(&execs, 0),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, info, _ := postJob(t, ts, `{"exp": "gbp"}`, true)
	if status != http.StatusOK {
		t.Fatalf("wait-submit status = %d, want 200", status)
	}
	if info.Status != StatusDone || info.ID == "" {
		t.Fatalf("info = %+v, want done with an id", info)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	var polled JobInfo
	json.NewDecoder(resp.Body).Decode(&polled)
	resp.Body.Close()
	if resp.StatusCode != 200 || polled.Status != StatusDone {
		t.Fatalf("poll = %d %+v", resp.StatusCode, polled)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + info.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var env bench.RawResult
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || env.Name != "gbp_vs_ffbp" {
		t.Fatalf("result = %d %+v", resp.StatusCode, env)
	}
	if execs.Load() != 1 {
		t.Errorf("executions = %d, want 1", execs.Load())
	}
}

// TestServerIdempotentResubmit: the same spec resubmitted attaches to
// the existing record (same content-addressed ID, no second execution).
func TestServerIdempotentResubmit(t *testing.T) {
	var execs atomic.Int64
	s := NewServer(Options{
		Workers: 2, BatchSize: 4, MaxWait: 5 * time.Millisecond,
		Run: stubRunner(&execs, 0),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, first, _ := postJob(t, ts, `{"exp": "gbp", "tag": "same"}`, true)
	status, second, _ := postJob(t, ts, `{"exp": "gbp", "tag": "same"}`, false)
	if status != http.StatusOK {
		t.Errorf("resubmit status = %d, want 200 (already done)", status)
	}
	if second.ID != first.ID || second.Status != StatusDone {
		t.Errorf("resubmit = %+v, want done record %s", second, first.ID)
	}
	if execs.Load() != 1 {
		t.Errorf("executions = %d, want 1 (single-flighted)", execs.Load())
	}
	if got := s.Registry().Counter("serve.jobs.deduplicated").Value(); got != 1 {
		t.Errorf("deduplicated = %v, want 1", got)
	}

	// A different tag is a different content address.
	_, third, _ := postJob(t, ts, `{"exp": "gbp", "tag": "other"}`, true)
	if third.ID == first.ID {
		t.Errorf("distinct tag produced the same id %s", third.ID)
	}
	if execs.Load() != 2 {
		t.Errorf("executions = %d, want 2", execs.Load())
	}
}

// TestServerAdmissionErrors: unknown experiments 400, queue saturation
// 429 with Retry-After, quota exhaustion 429 per tenant.
func TestServerAdmissionErrors(t *testing.T) {
	release := make(chan struct{})
	var execs atomic.Int64
	s := NewServer(Options{
		Workers: 1, BatchSize: 1, MaxWait: time.Millisecond, QueueLimit: 1,
		Quota: QuotaConfig{JobsPerSec: 0.001, Burst: 2},
		Run: func(ctx context.Context, j sweep.Job) (bench.Result, error) {
			execs.Add(1)
			<-release
			return bench.Result{Name: "stub", Data: struct{}{}}, nil
		},
	})
	defer close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if status, _, _ := postJob(t, ts, `{"exp": "nonsense"}`, false); status != http.StatusBadRequest {
		t.Errorf("unknown exp status = %d, want 400", status)
	}
	if status, _, _ := postJob(t, ts, `{"exp": "gbp", "scale": "galactic"}`, false); status != http.StatusBadRequest {
		t.Errorf("unknown scale status = %d, want 400", status)
	}

	// First job occupies the queue (BatchSize 1 flushes immediately and
	// blocks on release); the second distinct job overflows QueueLimit 1.
	if status, _, _ := postJob(t, ts, `{"exp": "gbp", "tag": "a"}`, false); status != http.StatusAccepted {
		t.Fatalf("first submit status = %d, want 202", status)
	}
	status, _, hdr := postJob(t, ts, `{"exp": "gbp", "tag": "b"}`, false)
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if got := s.Registry().Counter("serve.jobs.rejected.queue").Value(); got != 1 {
		t.Errorf("rejected.queue = %v, want 1", got)
	}

	// Tenant quota: burst 2 is spent (job a + overflow attempt b drew one
	// token each); the third distinct submission trips the bucket.
	status, _, hdr = postJob(t, ts, `{"exp": "gbp", "tag": "c"}`, false)
	if status != http.StatusTooManyRequests {
		t.Fatalf("quota status = %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("quota 429 without Retry-After header")
	}
	if got := s.Registry().Counter("serve.jobs.rejected.quota").Value(); got != 1 {
		t.Errorf("rejected.quota = %v, want 1", got)
	}
	// Another tenant still has its own budget (but hits the full queue,
	// which is checked after quota — so spend the bucket down instead).
	if got := execs.Load(); got != 1 {
		t.Errorf("executions = %d, want 1 (only the first job ran)", got)
	}
}

// TestServerDrain: draining flips readyz to 503, rejects new jobs with
// 503 + Retry-After, completes in-flight work, and appends per-job plus
// summary ledger entries.
func TestServerDrain(t *testing.T) {
	ledger := t.TempDir()
	var execs atomic.Int64
	s := NewServer(Options{
		Workers: 2, BatchSize: 4, MaxWait: 5 * time.Millisecond,
		LedgerDir: ledger,
		Run:       stubRunner(&execs, 20*time.Millisecond),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("readyz before drain: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// One job in flight when the drain begins.
	status, info, _ := postJob(t, ts, `{"exp": "gbp"}`, false)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("readyz during drain = %d, want 503", resp.StatusCode)
		}
	}
	status, _, hdr := postJob(t, ts, `{"exp": "gbp", "tag": "late"}`, false)
	if status != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit = %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}

	// The in-flight job completed during the drain.
	done, ok := s.Info(info.ID)
	if !ok || done.Status != StatusDone {
		t.Fatalf("in-flight job after drain = %+v", done)
	}

	entries, err := telemetry.Open(ledger).List()
	if err != nil {
		t.Fatal(err)
	}
	var jobEntries, summaries int
	for _, e := range entries {
		switch e.Tool {
		case "sarserve.job":
			jobEntries++
			if len(e.Envelope) == 0 {
				t.Error("job ledger entry without an envelope")
			}
		case "sarserve":
			summaries++
			if e.Metrics == nil {
				t.Error("drain summary without a metric snapshot")
			}
		}
	}
	if jobEntries != 1 || summaries != 1 {
		t.Errorf("ledger = %d job entries + %d summaries, want 1 + 1", jobEntries, summaries)
	}
	if done.RunID == "" {
		t.Error("completed job carries no run_id")
	}
}

// TestServerDeadlinePropagation: a per-request timeout reaches the
// runner's context and fails the job.
func TestServerDeadlinePropagation(t *testing.T) {
	s := NewServer(Options{
		Workers: 1, BatchSize: 1, MaxWait: time.Millisecond,
		Run: func(ctx context.Context, j sweep.Job) (bench.Result, error) {
			<-ctx.Done() // a kernel honoring its checkpoint
			return bench.Result{}, ctx.Err()
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, info, _ := postJob(t, ts, `{"exp": "gbp", "timeout_seconds": 0.05}`, true)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if info.Status != StatusFailed || !strings.Contains(info.Error, "deadline") {
		t.Fatalf("info = %+v, want failed with a deadline error", info)
	}
}

// TestServerExposition: /metrics speaks Prometheus 0.0.4 with the
// serve.* series, /debug/vars is one flat JSON object, /healthz is
// always fine.
func TestServerExposition(t *testing.T) {
	var execs atomic.Int64
	s := NewServer(Options{
		Workers: 1, BatchSize: 1, MaxWait: time.Millisecond,
		Run: stubRunner(&execs, 0),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	postJob(t, ts, `{"exp": "gbp"}`, true)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE sarmany_serve_jobs_accepted_total counter",
		"sarmany_serve_jobs_accepted_total 1",
		"# TYPE sarmany_serve_job_seconds histogram",
		"sarmany_serve_job_seconds_count 1",
		"sarmany_sweep_jobs_done_total 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v, ok := vars["serve.jobs.accepted"]; !ok || v.(float64) != 1 {
		t.Errorf("/debug/vars serve.jobs.accepted = %v", v)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestServerSharedCacheAcrossServers: two servers over one cache
// directory single-flight across processes — the second serves the
// first's envelope byte-identically with zero executions.
func TestServerSharedCacheAcrossServers(t *testing.T) {
	cache := t.TempDir()
	mk := func(execs *atomic.Int64) (*Server, *httptest.Server) {
		s := NewServer(Options{
			Workers: 1, BatchSize: 1, MaxWait: time.Millisecond,
			CacheDir: cache,
			Run:      stubRunner(execs, 0),
		})
		return s, httptest.NewServer(s.Handler())
	}
	var e1, e2 atomic.Int64
	_, ts1 := mk(&e1)
	defer ts1.Close()
	_, info1, _ := postJob(t, ts1, `{"exp": "gbp"}`, true)

	s2, ts2 := mk(&e2)
	defer ts2.Close()
	_, info2, _ := postJob(t, ts2, `{"exp": "gbp"}`, true)

	if e1.Load() != 1 || e2.Load() != 0 {
		t.Errorf("executions = %d + %d, want 1 + 0 (second server replays the cache)", e1.Load(), e2.Load())
	}
	if !info2.Cached {
		t.Errorf("second server's job not marked cached: %+v", info2)
	}
	if info1.ID != info2.ID {
		t.Errorf("ids differ across servers: %s vs %s", info1.ID, info2.ID)
	}
	raw1, _, _ := mustResult(t, ts1, info1.ID)
	raw2, _, _ := mustResult(t, ts2, info2.ID)
	if !bytes.Equal(raw1, raw2) {
		t.Error("cached envelope differs from fresh one")
	}
	if got := s2.Registry().Counter("serve.jobs.cachehits").Value(); got != 1 {
		t.Errorf("second server cachehits = %v, want 1", got)
	}
}

// mustResult fetches a completed job's envelope bytes.
func mustResult(t *testing.T, ts *httptest.Server, id string) ([]byte, int, http.Header) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("result status = %d: %s", resp.StatusCode, buf.String())
	}
	return buf.Bytes(), resp.StatusCode, resp.Header
}
