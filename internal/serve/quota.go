package serve

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// QuotaConfig is the per-tenant admission budget: a token bucket holding
// Burst tokens refilled at JobsPerSec. A zero JobsPerSec disables quota
// enforcement entirely.
type QuotaConfig struct {
	// JobsPerSec is the sustained per-tenant submission rate (0 = no
	// quota).
	JobsPerSec float64
	// Burst is the bucket capacity — how many jobs a tenant may submit
	// back to back before the rate limit bites (<= 0 means
	// max(1, ceil(JobsPerSec))).
	Burst int
}

// QuotaError is the typed admission failure for an exhausted tenant
// budget.
type QuotaError struct {
	// Tenant is the exhausted budget's owner.
	Tenant string
	// RetryAfter is how long until the bucket holds a whole token again.
	RetryAfter time.Duration
}

// Error names the over-quota tenant and its refill hint.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("serve: tenant %q over quota, retry after %v", e.Tenant, e.RetryAfter)
}

// quotas tracks one token bucket per tenant. Buckets materialize on
// first use, full.
type quotas struct {
	cfg QuotaConfig
	mu  sync.Mutex
	b   map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(cfg QuotaConfig) *quotas {
	if cfg.JobsPerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(math.Max(1, math.Ceil(cfg.JobsPerSec)))
	}
	return &quotas{cfg: cfg, b: make(map[string]*bucket)}
}

// admit spends one token from tenant's bucket, or returns a *QuotaError
// with the time until a whole token refills.
func (q *quotas) admit(tenant string, now time.Time) error {
	if q.cfg.JobsPerSec <= 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	bk, ok := q.b[tenant]
	if !ok {
		bk = &bucket{tokens: float64(q.cfg.Burst), last: now}
		q.b[tenant] = bk
	}
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens = math.Min(float64(q.cfg.Burst), bk.tokens+dt*q.cfg.JobsPerSec)
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return nil
	}
	wait := time.Duration((1 - bk.tokens) / q.cfg.JobsPerSec * float64(time.Second))
	return &QuotaError{Tenant: tenant, RetryAfter: wait}
}
