package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sarmany/internal/sweep"
)

// Request is one admitted job waiting for (or riding through) a batch.
// Its result arrives exactly once on an internal buffered channel, so a
// caller that stops waiting leaks nothing: the delivery never blocks and
// the channel is garbage once the Request is unreachable.
type Request struct {
	// ID is the job's content address (see Server job IDs).
	ID string
	// Job is the sweep job the batch executes.
	Job sweep.Job
	// ctx governs the request's execution: it carries the per-request
	// deadline and is honored both while queued (a canceled request is
	// failed at flush time without running) and while executing.
	ctx    context.Context
	cancel context.CancelFunc
	done   chan sweep.JobResult // buffered 1: delivery never blocks
}

// Context returns the request's execution context.
func (r *Request) Context() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// deliver hands the request its result. The buffered channel makes this
// non-blocking; a second delivery is dropped, so a request resolves at
// most once.
func (r *Request) deliver(res sweep.JobResult) {
	select {
	case r.done <- res:
	default:
	}
	if r.cancel != nil {
		r.cancel()
	}
}

// Wait blocks until the request resolves or ctx is done. The job error
// (if any) is returned alongside the result, mirroring sweep.JobResult.
func (r *Request) Wait(ctx context.Context) (sweep.JobResult, error) {
	select {
	case res := <-r.done:
		return res, res.Err
	case <-ctx.Done():
		return sweep.JobResult{}, ctx.Err()
	}
}

// QueueFullError is the typed admission failure for a saturated batcher
// queue: the client should back off and retry after the hint.
type QueueFullError struct {
	// Depth is the queued+in-flight request count at rejection time.
	Depth int
	// Limit is the configured queue bound.
	Limit int
	// RetryAfter is the server's backoff hint.
	RetryAfter time.Duration
}

// Error describes the rejection with its depth, limit and retry hint.
func (e *QueueFullError) Error() string {
	return fmt.Sprintf("serve: queue full (%d of %d requests pending), retry after %v",
		e.Depth, e.Limit, e.RetryAfter)
}

// DrainingError is the typed admission failure while the server drains:
// no new work is accepted, in-flight jobs are being flushed.
type DrainingError struct{}

// Error describes the rejection.
func (e *DrainingError) Error() string { return "serve: draining, not accepting jobs" }

// ExecFunc runs one flushed batch. It must deliver a result to every
// request in the batch (the batcher has already failed canceled ones).
type ExecFunc func(batch []*Request)

// BatcherOptions configures a Batcher.
type BatcherOptions struct {
	// BatchSize flushes a batch once this many requests are pending
	// (default 8).
	BatchSize int
	// MaxWait flushes a partial batch this long after its first request
	// arrived (default 25ms), bounding queueing latency at low load.
	MaxWait time.Duration
	// QueueLimit bounds queued+in-flight requests; Submit beyond it
	// returns a QueueFullError (default 256).
	QueueLimit int
	// RetryAfter supplies the backoff hint stamped into QueueFullError
	// (nil = a constant second).
	RetryAfter func() time.Duration
	// Exec runs each flushed batch. Required.
	Exec ExecFunc
}

// Batcher coalesces admitted requests into bounded batches: a batch
// flushes when it reaches BatchSize or MaxWait after its first request,
// whichever comes first. Flushed batches execute concurrently on Exec;
// the queue bound covers queued and executing requests together, which
// is what admission control pushes back on.
type Batcher struct {
	opt BatcherOptions

	mu       sync.Mutex
	pending  []*Request
	inflight int
	timer    *time.Timer
	gen      int // timer generation: a stale timer must not flush a newer batch
	closed   bool
	idle     chan struct{} // closed when closed && no pending && no inflight
	wg       sync.WaitGroup
}

// NewBatcher returns a batcher with defaults applied. Exec is required.
func NewBatcher(opt BatcherOptions) *Batcher {
	if opt.BatchSize <= 0 {
		opt.BatchSize = 8
	}
	if opt.MaxWait <= 0 {
		opt.MaxWait = 25 * time.Millisecond
	}
	if opt.QueueLimit <= 0 {
		opt.QueueLimit = 256
	}
	if opt.RetryAfter == nil {
		opt.RetryAfter = func() time.Duration { return time.Second }
	}
	if opt.Exec == nil {
		panic("serve: NewBatcher requires Exec")
	}
	return &Batcher{opt: opt, idle: make(chan struct{})}
}

// Depth returns the queued plus in-flight request count.
func (b *Batcher) Depth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending) + b.inflight
}

// Submit admits one job. ctx is the request's execution context (carry
// the per-job deadline in it); cancellation while queued fails the
// request at flush time without running it. Typed errors report the
// admission decision: *DrainingError after Close, *QueueFullError at the
// queue bound.
func (b *Batcher) Submit(ctx context.Context, id string, job sweep.Job) (*Request, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, &DrainingError{}
	}
	if depth := len(b.pending) + b.inflight; depth >= b.opt.QueueLimit {
		b.mu.Unlock()
		return nil, &QueueFullError{Depth: depth, Limit: b.opt.QueueLimit, RetryAfter: b.opt.RetryAfter()}
	}
	rctx, cancel := context.WithCancel(ctx)
	req := &Request{ID: id, Job: job, ctx: rctx, cancel: cancel, done: make(chan sweep.JobResult, 1)}
	b.pending = append(b.pending, req)
	switch {
	case len(b.pending) >= b.opt.BatchSize:
		b.flushLocked()
	case len(b.pending) == 1:
		gen := b.gen
		b.timer = time.AfterFunc(b.opt.MaxWait, func() { b.timedFlush(gen) })
	}
	b.mu.Unlock()
	return req, nil
}

// timedFlush is the MaxWait expiry path: flush whatever is pending,
// unless a size-triggered flush already took this batch (generation
// mismatch).
func (b *Batcher) timedFlush(gen int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if gen != b.gen || len(b.pending) == 0 {
		return
	}
	b.flushLocked()
}

// Flush forces the pending partial batch out immediately.
func (b *Batcher) Flush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pending) > 0 {
		b.flushLocked()
	}
}

// flushLocked hands the pending batch to Exec on a fresh goroutine.
// Requests whose context died while queued are failed here — they never
// reach Exec, and their (buffered) result channels resolve immediately.
func (b *Batcher) flushLocked() {
	batch := b.pending
	b.pending = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	live := batch[:0]
	var dead []*Request
	for _, r := range batch {
		if r.ctx.Err() != nil {
			dead = append(dead, r)
			continue
		}
		live = append(live, r)
	}
	b.inflight += len(live)
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for _, r := range dead {
			r.deliver(sweep.JobResult{Job: r.Job, Err: r.ctx.Err()})
		}
		if len(live) > 0 {
			b.opt.Exec(live)
		}
		b.mu.Lock()
		b.inflight -= len(live)
		b.maybeIdleLocked()
		b.mu.Unlock()
	}()
}

// maybeIdleLocked closes the idle channel once the batcher is closed and
// fully drained.
func (b *Batcher) maybeIdleLocked() {
	if b.closed && len(b.pending) == 0 && b.inflight == 0 {
		select {
		case <-b.idle:
		default:
			close(b.idle)
		}
	}
}

// Close drains the batcher: no further Submit is admitted, the pending
// partial batch flushes immediately, and Close blocks until every
// in-flight batch has delivered or ctx expires (in which case the
// remaining jobs keep running but Close returns the context error).
// Close is idempotent.
func (b *Batcher) Close(ctx context.Context) error {
	b.mu.Lock()
	b.closed = true
	if len(b.pending) > 0 {
		b.flushLocked()
	}
	b.maybeIdleLocked()
	b.mu.Unlock()
	select {
	case <-b.idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
