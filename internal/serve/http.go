package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"time"

	"sarmany/internal/obs"
	"sarmany/internal/telemetry"
)

// drainRetryAfter is the Retry-After hint stamped on 503 responses while
// the server drains: long enough for a rolling restart to bring a
// replacement up.
const drainRetryAfter = 5 * time.Second

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header for JSON-only
	// clients (429/503 responses).
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs              submit a job (202; ?wait=1 blocks to 200)
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/result  result envelope (200 done, 202 pending)
//	GET  /metrics              Prometheus text exposition
//	GET  /debug/vars           expvar-style JSON metrics
//	GET  /healthz              liveness (always 200 while serving)
//	GET  /readyz               readiness (503 once draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleInfo)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/vars", s.handleExpvar)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeError(w, http.StatusServiceUnavailable, "draining", drainRetryAfter)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// handleSubmit is POST /v1/jobs: decode the spec, run admission, and
// answer 202 with the job record (200 when attaching to an existing
// one). With ?wait=1 the handler blocks until the job resolves and
// answers 200 with the final record — the synchronous mode load
// generators use to measure end-to-end latency.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error(), 0)
		return
	}
	ctx, tid := s.traceContext(r)
	// Every submission answers with its trace ID, sampled or not — the
	// correlation key for logs, the ledger and `sarlog trace`. Set
	// before any body writes so error responses carry it too.
	w.Header().Set("X-Trace-Id", tid)
	info, err := s.Submit(ctx, spec)
	if err != nil {
		writeAdmissionError(w, err)
		return
	}
	status := http.StatusAccepted
	if info.Status == StatusDone || info.Status == StatusFailed {
		status = http.StatusOK
	}
	if r.URL.Query().Get("wait") != "" {
		done, err := s.WaitDone(r.Context(), info.ID)
		if err != nil {
			writeError(w, http.StatusGatewayTimeout, err.Error(), 0)
			return
		}
		writeJSON(w, http.StatusOK, done)
		return
	}
	writeJSON(w, status, info)
}

// traceContext establishes the submission's trace identity. An inbound
// W3C traceparent header wins outright: its trace ID is adopted and its
// sampled flag decides whether a span tree is collected (the caller's
// span becomes the remote parent, so the exported tree splices under
// the caller's trace). Without one, a fresh ID is minted and
// Options.TraceSample head-samples the collection decision.
func (s *Server) traceContext(r *http.Request) (context.Context, string) {
	ctx := r.Context()
	if id, parent, sampled, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		if sampled {
			tr := obs.NewReqTrace(id)
			tr.SetRemoteParent(parent)
			ctx = obs.ContextWithTrace(ctx, tr)
		}
		return ContextWithTraceID(ctx, id.String()), id.String()
	}
	id := obs.NewTraceID()
	if p := s.opt.TraceSample; p > 0 && (p >= 1 || rand.Float64() < p) {
		ctx = obs.ContextWithTrace(ctx, obs.NewReqTrace(id))
	}
	return ContextWithTraceID(ctx, id.String()), id.String()
}

// handleInfo is GET /v1/jobs/{id}.
func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, ok := s.Info(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job", 0)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleResult is GET /v1/jobs/{id}/result: the completed job's bench
// envelope verbatim (the BENCH_<exp>.json bytes). A job still queued or
// running answers 202 with its record; a failed job answers 500 with
// its error.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	raw, info, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job", 0)
		return
	}
	switch info.Status {
	case StatusDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(raw)
	case StatusFailed:
		writeError(w, http.StatusInternalServerError, info.Error, 0)
	default:
		writeJSON(w, http.StatusAccepted, info)
	}
}

// handleMetrics serves the registry in Prometheus text format under the
// "sarmany" namespace.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := telemetry.WritePrometheus(w, s.reg.Snapshot(), "sarmany"); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleExpvar serves the registry as expvar-compatible JSON.
func (s *Server) handleExpvar(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := telemetry.WriteExpvar(w, s.reg.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeAdmissionError maps the typed admission errors onto HTTP
// backpressure: 400 for a bad spec, 429 + Retry-After for quota and
// queue rejections, 503 + Retry-After while draining.
func writeAdmissionError(w http.ResponseWriter, err error) {
	var (
		spec  *SpecError
		quota *QuotaError
		full  *QueueFullError
		drain *DrainingError
	)
	switch {
	case errors.As(err, &spec):
		writeError(w, http.StatusBadRequest, err.Error(), 0)
	case errors.As(err, &quota):
		writeError(w, http.StatusTooManyRequests, err.Error(), quota.RetryAfter)
	case errors.As(err, &full):
		writeError(w, http.StatusTooManyRequests, err.Error(), full.RetryAfter)
	case errors.As(err, &drain):
		writeError(w, http.StatusServiceUnavailable, err.Error(), drainRetryAfter)
	default:
		writeError(w, http.StatusBadRequest, err.Error(), 0)
	}
}

// writeError emits the JSON error envelope, with a Retry-After header
// (whole seconds, rounded up, at least 1) when a hint is given.
func writeError(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	body := errorBody{Error: msg}
	if retryAfter > 0 {
		sec := math.Max(1, math.Ceil(retryAfter.Seconds()))
		w.Header().Set("Retry-After", fmt.Sprintf("%.0f", sec))
		body.RetryAfterSeconds = sec
	}
	writeJSON(w, status, body)
}

// writeJSON emits v as an indented JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
