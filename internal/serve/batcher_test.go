package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sarmany/internal/bench"
	"sarmany/internal/sweep"
)

// collectExec returns an ExecFunc that records every batch it receives
// and delivers a trivial success to each request.
func collectExec(mu *sync.Mutex, batches *[][]string) ExecFunc {
	return func(batch []*Request) {
		ids := make([]string, len(batch))
		for i, r := range batch {
			ids[i] = r.ID
			r.deliver(sweep.JobResult{Job: r.Job, Result: bench.Result{Name: r.ID}})
		}
		mu.Lock()
		*batches = append(*batches, ids)
		mu.Unlock()
	}
}

// TestBatcherSizeFlush: the batch flushes as soon as BatchSize requests
// are pending, without waiting for MaxWait.
func TestBatcherSizeFlush(t *testing.T) {
	var mu sync.Mutex
	var batches [][]string
	b := NewBatcher(BatcherOptions{
		BatchSize: 3, MaxWait: time.Hour, // a max-wait flush would time the test out
		Exec: collectExec(&mu, &batches),
	})
	var reqs []*Request
	for i := 0; i < 3; i++ {
		r, err := b.Submit(context.Background(), string(rune('a'+i)), sweep.Job{})
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, r := range reqs {
		if _, err := r.Wait(ctx); err != nil {
			t.Fatalf("wait %s: %v", r.ID, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 1 || len(batches[0]) != 3 {
		t.Fatalf("batches = %v, want one batch of 3", batches)
	}
}

// TestBatcherMaxWaitPartialFlush is the satellite edge case: a partial
// batch (fewer than BatchSize requests) must flush MaxWait after its
// first request arrives rather than wait indefinitely.
func TestBatcherMaxWaitPartialFlush(t *testing.T) {
	var mu sync.Mutex
	var batches [][]string
	b := NewBatcher(BatcherOptions{
		BatchSize: 100, MaxWait: 20 * time.Millisecond,
		Exec: collectExec(&mu, &batches),
	})
	start := time.Now()
	r, err := b.Submit(context.Background(), "lonely", sweep.Job{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := r.Wait(ctx); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("partial batch flushed after %v, before MaxWait", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 1 || len(batches[0]) != 1 {
		t.Fatalf("batches = %v, want one partial batch of 1", batches)
	}
}

// TestBatcherQueuedCancellation is the satellite edge case: cancelling a
// queued request's context fails it at flush time without executing it,
// and the result channel resolves (no leaked waiter) — a second waiter
// still gets the buffered outcome.
func TestBatcherQueuedCancellation(t *testing.T) {
	var executed atomic.Int64
	b := NewBatcher(BatcherOptions{
		BatchSize: 2, MaxWait: 10 * time.Millisecond,
		Exec: func(batch []*Request) {
			for _, r := range batch {
				executed.Add(1)
				r.deliver(sweep.JobResult{Job: r.Job})
			}
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	r, err := b.Submit(ctx, "doomed", sweep.Job{})
	if err != nil {
		t.Fatal(err)
	}
	cancel() // still queued: MaxWait has not elapsed

	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	if _, err := r.Wait(wctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait err = %v, want context.Canceled", err)
	}
	if got := executed.Load(); got != 0 {
		t.Errorf("canceled request executed %d times", got)
	}
	// The batcher keeps serving after the cancellation.
	ok, err := b.Submit(context.Background(), "alive", sweep.Job{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ok.Wait(wctx); err != nil {
		t.Fatalf("post-cancel submit: %v", err)
	}
}

// TestBatcherDrainWithInflight is the satellite edge case: Close must
// flush the pending partial batch, wait for in-flight batches to
// deliver, and reject later submissions with a typed DrainingError.
func TestBatcherDrainWithInflight(t *testing.T) {
	release := make(chan struct{})
	var delivered atomic.Int64
	b := NewBatcher(BatcherOptions{
		BatchSize: 1, MaxWait: time.Hour,
		Exec: func(batch []*Request) {
			<-release // hold the batch in flight until the test says go
			for _, r := range batch {
				r.deliver(sweep.JobResult{Job: r.Job})
				delivered.Add(1)
			}
		},
	})
	// BatchSize 1: this request is in flight (blocked on release) now.
	if _, err := b.Submit(context.Background(), "inflight", sweep.Job{}); err != nil {
		t.Fatal(err)
	}

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		closed <- b.Close(ctx)
	}()

	// Close must not return while the batch is held in flight.
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v with a batch still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	if d := delivered.Load(); d != 0 {
		t.Fatalf("delivered = %d before release", d)
	}

	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := delivered.Load(); d != 1 {
		t.Errorf("delivered = %d after drain, want 1", d)
	}

	var drain *DrainingError
	if _, err := b.Submit(context.Background(), "late", sweep.Job{}); !errors.As(err, &drain) {
		t.Errorf("post-drain submit err = %v, want *DrainingError", err)
	}
}

// TestBatcherQueueFullTyped: the queue bound rejects with a typed
// QueueFullError carrying depth, limit and a positive Retry-After.
func TestBatcherQueueFullTyped(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	b := NewBatcher(BatcherOptions{
		BatchSize: 1, MaxWait: time.Hour, QueueLimit: 2,
		RetryAfter: func() time.Duration { return 7 * time.Second },
		Exec: func(batch []*Request) {
			<-release
			for _, r := range batch {
				r.deliver(sweep.JobResult{Job: r.Job})
			}
		},
	})
	for i := 0; i < 2; i++ {
		if _, err := b.Submit(context.Background(), string(rune('a'+i)), sweep.Job{}); err != nil {
			t.Fatal(err)
		}
	}
	var full *QueueFullError
	_, err := b.Submit(context.Background(), "overflow", sweep.Job{})
	if !errors.As(err, &full) {
		t.Fatalf("err = %v, want *QueueFullError", err)
	}
	if full.Limit != 2 || full.Depth < 2 || full.RetryAfter != 7*time.Second {
		t.Errorf("QueueFullError = %+v", full)
	}
}

// TestQuotaExhaustionTyped is the satellite edge case: an exhausted
// tenant budget returns a typed *QuotaError with a refill hint, while
// other tenants keep their own full buckets.
func TestQuotaExhaustionTyped(t *testing.T) {
	q := newQuotas(QuotaConfig{JobsPerSec: 2, Burst: 2})
	now := time.Unix(100, 0)
	for i := 0; i < 2; i++ {
		if err := q.admit("alpha", now); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	var qe *QuotaError
	err := q.admit("alpha", now)
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QuotaError", err)
	}
	if qe.Tenant != "alpha" || qe.RetryAfter <= 0 || qe.RetryAfter > time.Second {
		t.Errorf("QuotaError = %+v (RetryAfter should be (0, 1s] at 2 jobs/s)", qe)
	}
	// A different tenant draws from its own bucket.
	if err := q.admit("beta", now); err != nil {
		t.Errorf("tenant beta rejected: %v", err)
	}
	// Refill: half a second restores one whole token at 2 jobs/s.
	if err := q.admit("alpha", now.Add(600*time.Millisecond)); err != nil {
		t.Errorf("alpha after refill: %v", err)
	}
}

// TestQuotaUnlimited: a zero config admits everything.
func TestQuotaUnlimited(t *testing.T) {
	q := newQuotas(QuotaConfig{})
	now := time.Unix(100, 0)
	for i := 0; i < 1000; i++ {
		if err := q.admit("anyone", now); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
}
