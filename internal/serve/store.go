package serve

import (
	"strconv"
	"sync"
	"time"

	"sarmany/internal/obs"
)

// Status is a job's lifecycle state.
type Status string

// The job lifecycle: Queued (admitted, waiting for its batch), Running
// (its batch is executing), then Done or Failed. A resubmission of a
// Failed job re-enters at Queued; Done results are immutable.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// JobInfo is the public view of one job record — the GET /v1/jobs/{id}
// response body.
type JobInfo struct {
	// ID is the content-addressed job identifier.
	ID string `json:"id"`
	// Spec is the submitted job specification.
	Spec JobSpec `json:"spec"`
	// Status is the lifecycle state.
	Status Status `json:"status"`
	// Cached reports whether the result was replayed from the shared
	// content-addressed cache instead of freshly simulated.
	Cached bool `json:"cached,omitempty"`
	// Error carries the failure message when Status is "failed".
	Error string `json:"error,omitempty"`
	// SubmittedAt is the first-submission timestamp (RFC 3339).
	SubmittedAt time.Time `json:"submitted_at"`
	// DurationSeconds is the job's execution wall clock (0 until done).
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	// RunID is the run-ledger entry recorded for the completed job, when
	// ledger recording is enabled.
	RunID string `json:"run_id,omitempty"`
	// TraceID is the W3C trace identifier of the request that owns this
	// record (the first submission; attached duplicates keep their own
	// IDs in the X-Trace-Id response header). It correlates the record
	// with structured logs and the ledger entry's embedded span tree.
	TraceID string `json:"trace_id,omitempty"`
}

// traceState bundles one admitted request's tracing handles: the
// collector plus the open stage spans whose ends are owned by later
// pipeline stages. All fields may be nil (unsampled request) — every
// span operation is nil-safe.
type traceState struct {
	trace *obs.ReqTrace
	root  *obs.ReqSpan // whole-request span, ended at ledger time
	queue *obs.ReqSpan // queue.wait, ended when the batch flushes
	exec  *obs.ReqSpan // execute stage, parent of the sweep's child spans
}

// record is one job's mutable server-side state. The completion channel
// closes exactly once, on the Queued/Running -> Done/Failed transition,
// so any number of waiters (wait-mode submitters, pollers) can block on
// the same execution.
type record struct {
	mu    sync.Mutex
	info  JobInfo
	raw   []byte        // result envelope bytes (Done only)
	done  chan struct{} // closed on completion
	trace traceState    // owning request's trace handles (zero when unsampled)
}

// setTrace stores the owning request's trace handles. Called before the
// record reaches the batcher, so the executing side always sees them.
func (r *record) setTrace(ts traceState) {
	r.mu.Lock()
	r.trace = ts
	r.mu.Unlock()
}

// traceHandles returns the record's trace handles (zero-valued, and
// therefore all-nil-safe, for unsampled requests).
func (r *record) traceHandles() traceState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace
}

// beginExec marks the batch-flush boundary in the record's trace: the
// queue.wait span ends, the execute stage span opens (annotated with the
// flushed batch size), and a batch.form child covers job-slice assembly
// until the caller ends it. Returns the batch.form span.
func (r *record) beginExec(batchJobs int) *obs.ReqSpan {
	r.mu.Lock()
	ts := r.trace
	r.mu.Unlock()
	ts.queue.End()
	exec := ts.root.Child("execute")
	exec.SetAttr("batch_jobs", strconv.Itoa(batchJobs))
	form := exec.Child("batch.form")
	r.mu.Lock()
	r.trace.exec = exec
	r.mu.Unlock()
	return form
}

func (r *record) snapshot() JobInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.info
}

func (r *record) result() ([]byte, JobInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.raw, r.info
}

// store maps content-addressed job IDs to their records. It is the
// idempotency layer: submitting a job whose ID is already Queued,
// Running or Done attaches to the existing record instead of executing
// again — duplicate requests are single-flighted across tenants.
type store struct {
	mu   sync.Mutex
	jobs map[string]*record
}

func newStore() *store { return &store{jobs: make(map[string]*record)} }

// get returns the record for id, if any.
func (s *store) get(id string) (*record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.jobs[id]
	return r, ok
}

// admit returns the record for id, creating a fresh Queued one when none
// exists or the previous attempt Failed. traceID is the submitting
// request's trace identifier, stamped on a fresh record only (an
// attached duplicate keeps the owner's). The second result reports
// whether the caller owns a new submission (and must enqueue it).
func (s *store) admit(id string, spec JobSpec, traceID string, now time.Time) (*record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.jobs[id]; ok {
		r.mu.Lock()
		st := r.info.Status
		r.mu.Unlock()
		if st != StatusFailed {
			return r, false
		}
	}
	r := &record{
		info: JobInfo{ID: id, Spec: spec, Status: StatusQueued, SubmittedAt: now, TraceID: traceID},
		done: make(chan struct{}),
	}
	s.jobs[id] = r
	return r, true
}

// len returns the stored record count.
func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// setRunning marks the record's batch as executing.
func (r *record) setRunning() {
	r.mu.Lock()
	if r.info.Status == StatusQueued {
		r.info.Status = StatusRunning
	}
	r.mu.Unlock()
}

// complete resolves the record and wakes every waiter. err == "" means
// success.
func (r *record) complete(raw []byte, cached bool, duration time.Duration, err, runID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.info.Status == StatusDone || r.info.Status == StatusFailed {
		return
	}
	if err != "" {
		r.info.Status = StatusFailed
		r.info.Error = err
	} else {
		r.info.Status = StatusDone
		r.raw = raw
	}
	r.info.Cached = cached
	r.info.DurationSeconds = duration.Seconds()
	r.info.RunID = runID
	close(r.done)
}
