package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// curlExample is one executable example parsed out of docs/API.md.
type curlExample struct {
	line       int
	method     string
	url        string // path + query, host stripped
	body       string
	wantStatus int
}

// docStatusRe matches the "# -> NNN" expected-status annotation every
// documented curl example must carry.
var docStatusRe = regexp.MustCompile(`#\s*->\s*(\d{3})\s*$`)

// parseCurlExamples extracts every `curl` line from the markdown file.
// The convention (stated in docs/API.md): single-line examples against
// localhost:8357, flags limited to -s, -X <method> and -d '<body>',
// annotated with the expected status as "# -> NNN".
func parseCurlExamples(t *testing.T, path string) []curlExample {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var examples []curlExample
	for i, line := range strings.Split(string(raw), "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "curl ") {
			continue
		}
		m := docStatusRe.FindStringSubmatch(trimmed)
		if m == nil {
			t.Errorf("docs/API.md:%d: curl example lacks a \"# -> NNN\" status annotation", i+1)
			continue
		}
		want, _ := strconv.Atoi(m[1])
		ex := curlExample{line: i + 1, method: http.MethodGet, wantStatus: want}
		toks := tokenize(strings.TrimSuffix(trimmed, m[0]))
		for j := 1; j < len(toks); j++ {
			switch tok := toks[j]; tok {
			case "-s":
			case "-X":
				j++
				ex.method = toks[j]
			case "-d":
				j++
				ex.body = toks[j]
			default:
				if at := strings.Index(tok, "localhost:8357"); at >= 0 {
					ex.url = tok[at+len("localhost:8357"):]
				} else {
					t.Errorf("docs/API.md:%d: unsupported curl token %q", i+1, tok)
				}
			}
		}
		if ex.url == "" {
			t.Errorf("docs/API.md:%d: no localhost:8357 URL in example", i+1)
			continue
		}
		examples = append(examples, ex)
	}
	return examples
}

// tokenize splits a shell line on spaces, honoring single quotes.
func tokenize(line string) []string {
	var toks []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range line {
		switch {
		case r == '\'':
			inQuote = !inQuote
		case r == ' ' && !inQuote:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}

// TestAPIDocExamples runs every curl example in docs/API.md against a
// live test server, in document order, asserting the documented status
// codes. $JOB is substituted with the ID from the most recent
// successful submission, exactly as the doc promises.
func TestAPIDocExamples(t *testing.T) {
	examples := parseCurlExamples(t, filepath.Join("..", "..", "docs", "API.md"))
	if len(examples) < 10 {
		t.Fatalf("parsed only %d curl examples from docs/API.md, want the full set", len(examples))
	}

	var executions atomic.Int64
	s := NewServer(Options{
		Workers: 2, BatchSize: 4, MaxWait: 5 * time.Millisecond,
		Run: stubRunner(&executions, 0),
	})
	defer s.Drain(t.Context())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	client := ts.Client()
	lastJob := ""
	for _, ex := range examples {
		url := ts.URL + strings.ReplaceAll(ex.url, "$JOB", lastJob)
		var body io.Reader
		if ex.body != "" {
			body = strings.NewReader(ex.body)
		}
		req, err := http.NewRequest(ex.method, url, body)
		if err != nil {
			t.Fatalf("docs/API.md:%d: %v", ex.line, err)
		}
		if ex.body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("docs/API.md:%d: %v", ex.line, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != ex.wantStatus {
			t.Errorf("docs/API.md:%d: %s %s = %d, documented %d\nbody: %s",
				ex.line, ex.method, ex.url, resp.StatusCode, ex.wantStatus, raw)
			continue
		}
		// Remember the latest submitted job's ID for $JOB substitution.
		if ex.method == http.MethodPost && resp.StatusCode < 300 {
			var rec struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(raw, &rec); err == nil && rec.ID != "" {
				lastJob = rec.ID
			}
		}
	}
	if lastJob == "" {
		t.Error("no documented POST produced a job ID — $JOB examples never exercised")
	}
}
