//go:build !race

package serve

// raceEnabled records in the saturation envelope whether the run paid
// the race detector's overhead.
const raceEnabled = false
