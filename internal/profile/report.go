package profile

import (
	"fmt"
	"io"
	"strings"
)

// WriteText renders the full profile as a plain-text report: the
// critical-path cause table and chain, the per-phase energy attribution,
// the roofline classification, and the mesh heatmap.
func (p *Profile) WriteText(w io.Writer) error {
	b := &strings.Builder{}
	fmt.Fprintf(b, "profile: epiphany %dx%d, %d cores, %.0f cycles (%.3f ms @ %.1f GHz)\n",
		p.Rows, p.Cols, p.Cores, p.RunCycles, p.Seconds*1e3, p.ClockHz/1e9)
	if p.DroppedSpans > 0 {
		fmt.Fprintf(b, "WARNING: %d spans dropped (trace ring overflow) — early activity is missing and the critical path below may be truncated; rerun with a larger -tracecap\n",
			p.DroppedSpans)
	}

	b.WriteString("\ncritical path (what bound the run, cycle by cycle):\n")
	fmt.Fprintf(b, "  %-14s %14s %8s  %s\n", "cause", "cycles", "share", "")
	for _, cause := range p.Critical.Causes() {
		cy := p.Critical.ByCause[cause]
		share := cy / p.RunCycles
		fmt.Fprintf(b, "  %-14s %14.0f %7.1f%%  %s\n",
			cause, cy, share*100, bar(share, 24))
	}
	fmt.Fprintf(b, "  %-14s %14.0f %7.1f%%  (%d segments)\n",
		"total", p.Critical.Cycles(), 100*p.Critical.Cycles()/p.RunCycles, len(p.Critical.Segments))

	if n := len(p.Critical.Segments); n > 0 {
		b.WriteString("\n  chain (latest first):\n")
		shown := 0
		for i := n - 1; i >= 0 && shown < 12; i-- {
			s := p.Critical.Segments[i]
			fmt.Fprintf(b, "    %12.0f..%-12.0f %-8s %s\n", s.Start, s.End, s.Track, s.Cause)
			shown++
		}
		if n > shown {
			fmt.Fprintf(b, "    ... %d earlier segments\n", n-shown)
		}
	}

	b.WriteString("\nper-phase energy attribution:\n")
	fmt.Fprintf(b, "  %-5s %12s %10s %10s %9s %9s %9s %9s %9s %10s %8s %8s\n",
		"phase", "cycles", "bound", "roofline", "compute", "localmem", "noc", "elink", "static", "total J", "flop/cy", "B/cy")
	for _, ph := range p.Phases {
		name := fmt.Sprintf("%d", ph.Index)
		bound := ph.Bound
		if ph.Index < 0 {
			name, bound = "tail", "-"
		}
		e := ph.Energy
		fmt.Fprintf(b, "  %-5s %12.0f %10s %10s %9.2e %9.2e %9.2e %9.2e %9.2e %10.3e %8.2f %8.3f\n",
			name, ph.Cycles(), bound, ph.Roofline.Bound(),
			e.ComputeJ, e.LocalMemJ, e.NoCJ, e.ELinkJ, e.StaticJ, e.Total(),
			ph.Roofline.FlopPerCycle, ph.Roofline.BytePerCycle)
	}
	t := p.TotalEnergy
	fmt.Fprintf(b, "  %-5s %12.0f %10s %10s %9.2e %9.2e %9.2e %9.2e %9.2e %10.3e (avg %.2f W)\n",
		"total", p.RunCycles, "", "",
		t.ComputeJ, t.LocalMemJ, t.NoCJ, t.ELinkJ, t.StaticJ, t.Total(),
		t.AveragePower(p.Seconds))

	if d := p.Faults; d != nil {
		b.WriteString("\nfault degradation (cost of the injected fault plan):\n")
		if len(d.HaltedCores) > 0 {
			fmt.Fprintf(b, "  halted cores: %v, %d slot(s) remapped\n", d.HaltedCores, d.RemappedSlots)
		}
		fmt.Fprintf(b, "  %-11s %-12s %8s %14s %12s\n", "kind", "target", "events", "cycles", "energy J")
		for _, r := range d.Rows {
			fmt.Fprintf(b, "  %-11s %-12s %8d %14.0f %12.3e\n",
				r.Kind, r.Target, r.Events, r.Cycles, r.EnergyJ)
		}
		fmt.Fprintf(b, "  %-11s %-12s %8s %14.0f %12.3e  (%.2f%% of run)\n",
			"overhead", "", "", d.OverheadCycles, d.OverheadEnergyJ,
			100*d.OverheadCycles/p.RunCycles)
	}

	b.WriteString("\nmesh heatmap (per-core busy fraction):\n")
	for r := 0; r < p.Heatmap.Rows; r++ {
		b.WriteString("  ")
		for c := 0; c < p.Heatmap.Cols; c++ {
			fmt.Fprintf(b, " %3.0f%%", 100*p.Heatmap.CoreBusy[r*p.Heatmap.Cols+c])
		}
		b.WriteByte('\n')
	}
	if len(p.Heatmap.Links) > 0 {
		b.WriteString("\n  link occupancy:\n")
		fmt.Fprintf(b, "  %-9s %5s %8s %10s %12s %12s\n",
			"link", "hops", "blocks", "bytes", "send wait", "recv wait")
		for _, l := range p.Heatmap.Links {
			fmt.Fprintf(b, "  %3d->%-4d %5d %8d %10d %12.0f %12.0f\n",
				l.From, l.To, l.Hops, l.Blocks, l.Bytes, l.SendWait, l.RecvWait)
		}
	}
	if len(p.Heatmap.MeshEdges) > 0 {
		max := p.Heatmap.MaxEdgeBytes()
		b.WriteString("\n  physical mesh edges (XY-routed):\n")
		for _, e := range p.Heatmap.MeshEdges {
			fmt.Fprintf(b, "  (%d,%d)->(%d,%d) %10d B  %s\n",
				e.FromRow, e.FromCol, e.ToRow, e.ToCol, e.Bytes,
				bar(float64(e.Bytes)/float64(max), 24))
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// bar renders a fraction as a fixed-width hash bar, clamped to [0, 1].
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return strings.Repeat("#", int(frac*float64(width)+0.5))
}
