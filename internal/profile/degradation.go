package profile

import (
	"fmt"
	"sort"

	"sarmany/internal/emu"
	"sarmany/internal/energy"
)

// DegradationRow is one fault mechanism's measured cost on one target: the
// retransmissions of a single faulty link, one core's DMA timeout waits,
// one core's frequency-derate stretch, or the tile slots moved off one
// halted core.
type DegradationRow struct {
	// Kind names the mechanism: "link-retry", "dma-retry", "derate" or
	// "remap".
	Kind string `json:"kind"`
	// Target locates the row: "link 3->7" or "core 5".
	Target string `json:"target"`
	// Events counts the mechanism's firings: retries for the retry kinds,
	// halted-commit windows are not counted individually so derate rows
	// report 0, remap rows count the slots moved off the core.
	Events uint64 `json:"events"`
	// Cycles is the extra modeled time the mechanism injected on this
	// target (0 for remap rows — moving a slot is free, the doubled work
	// on the taker shows up as ordinary compute).
	Cycles float64 `json:"cycles"`
	// EnergyJ prices the row: retransmitted bytes at the mesh-network
	// per-byte cost plus static power over the injected cycles.
	EnergyJ float64 `json:"energy_j"`
}

// Degradation is the fault-cost report of a run executed under a fault
// plan: one row per (mechanism, target) pair, plus whole-run overhead
// totals measured independently from the aggregate counters. The rows sum
// to the totals — conform.CheckProfile asserts it.
type Degradation struct {
	// HaltedCores lists the plan's hard-halted cores (ascending).
	HaltedCores []int `json:"halted_cores,omitempty"`
	// RemappedSlots counts work slots that ran on a different core than
	// the fault-free mapping would have used.
	RemappedSlots int `json:"remapped_slots"`
	// Rows holds the per-target cost rows, link retries first, then DMA
	// retries, derates and remaps.
	Rows []DegradationRow `json:"rows"`
	// OverheadCycles is the whole-run fault overhead measured from the
	// aggregate core statistics: link retry + DMA retry + derate cycles.
	OverheadCycles float64 `json:"overhead_cycles"`
	// OverheadEnergyJ prices OverheadCycles and the retransmitted traffic
	// with the same linear model the rows use.
	OverheadEnergyJ float64 `json:"overhead_energy_j"`
}

// buildDegradation assembles the fault report for a run that carried a
// non-empty fault plan; it returns nil for fault-free runs.
func buildDegradation(ch *emu.Chip) *Degradation {
	inj := ch.Faults()
	if inj == nil || inj.Empty() {
		return nil
	}
	clock := ch.P.Clock
	d := &Degradation{RemappedSlots: len(ch.Remaps())}
	for _, id := range inj.HaltedCores() {
		if id < len(ch.Cores) {
			d.HaltedCores = append(d.HaltedCores, id)
		}
	}

	for _, l := range ch.LinkStats() {
		if l.Retries == 0 && l.RetryBytes == 0 && l.RetryCycles == 0 {
			continue
		}
		d.Rows = append(d.Rows, DegradationRow{
			Kind:   "link-retry",
			Target: fmt.Sprintf("link %d->%d", l.From, l.To),
			Events: l.Retries,
			Cycles: l.RetryCycles,
			EnergyJ: energy.NoCEnergyJ(l.RetryBytes) +
				energy.StaticEnergyJ(l.RetryCycles/clock),
		})
	}
	n := ch.ActiveCount()
	for i := 0; i < n; i++ {
		s := &ch.Cores[i].Stats
		if s.DMARetries > 0 || s.DMARetryCycles > 0 {
			d.Rows = append(d.Rows, DegradationRow{
				Kind:    "dma-retry",
				Target:  fmt.Sprintf("core %d", i),
				Events:  s.DMARetries,
				Cycles:  s.DMARetryCycles,
				EnergyJ: energy.StaticEnergyJ(s.DMARetryCycles / clock),
			})
		}
	}
	for i := 0; i < n; i++ {
		s := &ch.Cores[i].Stats
		if s.DerateCycles > 0 {
			d.Rows = append(d.Rows, DegradationRow{
				Kind:    "derate",
				Target:  fmt.Sprintf("core %d", i),
				Cycles:  s.DerateCycles,
				EnergyJ: energy.StaticEnergyJ(s.DerateCycles / clock),
			})
		}
	}
	slotsOff := map[int]uint64{}
	for _, m := range ch.Remaps() {
		slotsOff[m.From]++
	}
	froms := make([]int, 0, len(slotsOff))
	for from := range slotsOff {
		froms = append(froms, from)
	}
	sort.Ints(froms)
	for _, from := range froms {
		d.Rows = append(d.Rows, DegradationRow{
			Kind:   "remap",
			Target: fmt.Sprintf("core %d", from),
			Events: slotsOff[from],
		})
	}

	// The overhead totals come from the aggregate counters, not from the
	// rows, so a row that went missing (or was double-counted) is a
	// checkable inconsistency rather than a silently wrong report.
	t := ch.TotalStats()
	d.OverheadCycles = t.LinkRetryCycles + t.DMARetryCycles + t.DerateCycles
	d.OverheadEnergyJ = energy.NoCEnergyJ(t.RetryBytes) +
		energy.StaticEnergyJ(d.OverheadCycles/clock)
	return d
}
