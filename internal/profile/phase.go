package profile

import (
	"sarmany/internal/emu"
	"sarmany/internal/energy"
)

// Roofline classifies a phase by operational intensity against the
// machine's two ceilings: the FPU issue rate (one FPU op per core per
// cycle, software routines expanded to their FPU op counts) and the
// shared off-chip bandwidth. The classification is the roofline view of
// the same question the emulator's contention model answers with
// PhaseRecord.BandwidthBound; the two usually agree, and a disagreement
// is itself diagnostic (e.g. a phase near both ceilings at once).
type Roofline struct {
	Flops    float64 `json:"flops"`     // expanded FPU operations
	ExtBytes float64 `json:"ext_bytes"` // off-chip bytes moved

	FlopPerCycle  float64 `json:"flop_per_cycle"`
	BytePerCycle  float64 `json:"byte_per_cycle"`
	ComputeUtil   float64 `json:"compute_util"`   // of cores × 1 flop/cycle
	BandwidthUtil float64 `json:"bandwidth_util"` // of ExtBytesPerCycle
}

// Bound names the nearer ceiling: "bandwidth" when off-chip utilization
// exceeds compute utilization, else "compute".
func (r Roofline) Bound() string {
	if r.BandwidthUtil > r.ComputeUtil {
		return "bandwidth"
	}
	return "compute"
}

// PhaseEnergy is one row of the per-phase attribution: a barrier phase
// (or the synthetic tail after the last barrier) with its statistics
// delta, energy breakdown, and roofline classification.
type PhaseEnergy struct {
	// Index is the phase number, or -1 for the tail row.
	Index int     `json:"index"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Bound is the contention model's verdict ("compute"/"bandwidth"),
	// "" for the tail row.
	Bound    string           `json:"bound"`
	Stats    emu.CoreStats    `json:"stats"`
	Energy   energy.Breakdown `json:"energy"`
	Roofline Roofline         `json:"roofline"`
}

// Cycles returns the row's duration.
func (p PhaseEnergy) Cycles() float64 { return p.End - p.Start }

// attributePhases joins the chip's phase records with the energy model:
// each phase's statistics delta is priced with the same per-event
// constants as the whole run, and static power is charged per phase
// duration, so the rows sum to the whole-run breakdown exactly.
func attributePhases(ch *emu.Chip) []PhaseEnergy {
	clock := ch.P.Clock
	end := ch.MaxCycles()
	var (
		rows    []PhaseEnergy
		covered float64
		summed  emu.CoreStats
	)
	for _, p := range ch.Phases() {
		rows = append(rows, PhaseEnergy{
			Index: p.Index, Start: p.Start, End: p.End,
			Bound:    p.Bound(),
			Stats:    p.Stats,
			Energy:   energy.EpiphanyBreakdown(p.Stats, p.Duration()/clock),
			Roofline: roofline(ch.P, ch.ActiveCount(), p.Stats, p.Duration()),
		})
		covered = p.End
		summed = emu.AddStats(summed, p.Stats)
	}
	// Tail: work after the final barrier (or the whole run for kernels
	// with no barriers). Its stats are the residual against TotalStats,
	// which also sweeps in barrier-release bookkeeping recorded after the
	// last resolvePhase, keeping the rows' sum exact.
	if tailStats := emu.SubStats(ch.TotalStats(), summed); end > covered || statsNonZero(tailStats) {
		rows = append(rows, PhaseEnergy{
			Index: -1, Start: covered, End: end,
			Stats:    tailStats,
			Energy:   energy.EpiphanyBreakdown(tailStats, (end-covered)/clock),
			Roofline: roofline(ch.P, ch.ActiveCount(), tailStats, end-covered),
		})
	}
	return rows
}

// roofline computes a stats delta's position against the ceilings.
func roofline(p emu.Params, cores int, s emu.CoreStats, cycles float64) Roofline {
	r := Roofline{
		Flops: float64(s.FMA+s.Flop) +
			float64(s.Sqrt*uint64(p.SqrtFlops)) +
			float64(s.Div*uint64(p.DivFlops)) +
			float64(s.Trig*uint64(p.TrigFlops)),
		ExtBytes: float64(s.ExtReadB + s.ExtWriteB),
	}
	if cycles <= 0 {
		return r
	}
	r.FlopPerCycle = r.Flops / cycles
	r.BytePerCycle = r.ExtBytes / cycles
	if cores > 0 {
		r.ComputeUtil = r.FlopPerCycle / float64(cores)
	}
	if p.ExtBytesPerCycle > 0 {
		r.BandwidthUtil = r.BytePerCycle / p.ExtBytesPerCycle
	}
	return r
}

// statsNonZero reports whether any published statistic is nonzero.
func statsNonZero(s emu.CoreStats) bool {
	var zero emu.CoreStats
	return s != zero
}

// SumEnergy adds breakdowns component-wise.
func SumEnergy(rows []PhaseEnergy) energy.Breakdown {
	var t energy.Breakdown
	for _, r := range rows {
		t.ComputeJ += r.Energy.ComputeJ
		t.LocalMemJ += r.Energy.LocalMemJ
		t.NoCJ += r.Energy.NoCJ
		t.ELinkJ += r.Energy.ELinkJ
		t.StaticJ += r.Energy.StaticJ
	}
	return t
}
