// Package profile is the post-hoc trace analyzer: it consumes the span
// tracks, dependency edges, phase records and per-core statistics a traced
// emu.Chip run leaves behind and answers the questions the paper's
// Sec. VI analysis asks by hand — what chain of work and waiting actually
// determined the execution time (critical path), where on the mesh the
// cycles and bytes went (heatmap), what each barrier phase cost in joules
// (per-phase energy attribution), and whether each phase was compute- or
// bandwidth-bound in the roofline sense (operational intensity against
// the machine's peak FLOP rate and off-chip bandwidth).
//
// The analyzer is strictly read-only: it runs after Run has returned and
// never changes modeled timing. Reports are exported as plain text
// (WriteText) or a self-contained HTML page (WriteHTML); cmd/sarprof
// wraps the package as a CLI.
package profile

import (
	"fmt"

	"sarmany/internal/emu"
	"sarmany/internal/energy"
	"sarmany/internal/obs"
)

// Profile is the complete analysis of one traced chip run.
type Profile struct {
	// Rows, Cols, Cores identify the machine: the global core-grid shape
	// (across every chip of a multi-chip array) and how many cores the
	// run used. ChipRows/ChipCols give the chip-array arrangement and are
	// omitted for a single chip.
	Rows     int     `json:"rows"`
	Cols     int     `json:"cols"`
	ChipRows int     `json:"chip_rows,omitempty"`
	ChipCols int     `json:"chip_cols,omitempty"`
	Cores    int     `json:"cores"`
	ClockHz  float64 `json:"clock_hz"`

	// RunCycles is the modeled execution time in cycles; Seconds the same
	// in wall time.
	RunCycles float64 `json:"run_cycles"`
	Seconds   float64 `json:"seconds"`

	// Total is the summed statistics of the cores that ran, and
	// TotalEnergy the whole-run energy estimate. The per-phase energy
	// rows in Phases sum to TotalEnergy exactly (the power model is
	// linear in both statistics and time).
	Total       emu.CoreStats    `json:"total_stats"`
	TotalEnergy energy.Breakdown `json:"total_energy"`

	// Phases holds one row per barrier phase plus, when the run did work
	// after (or without) the final barrier, a synthetic tail row, so the
	// rows partition [0, RunCycles].
	Phases []PhaseEnergy `json:"phases"`

	// Critical is the longest dependency chain through the run.
	Critical CriticalPath `json:"critical"`

	// Heatmap locates utilization and traffic on the mesh.
	Heatmap Heatmap `json:"heatmap"`

	// Faults is the degradation report of a run executed under a
	// non-empty fault plan: per-target cost rows for link retransmission,
	// DMA timeouts, frequency derating and slot remapping, with
	// whole-run overhead totals the rows sum to. Nil for fault-free runs.
	Faults *Degradation `json:"faults,omitempty"`

	// DroppedSpans counts trace-ring overflow across all tracks. When
	// nonzero the early part of the trace is missing and the critical
	// path may start from a truncated picture; reports carry a warning.
	DroppedSpans uint64 `json:"dropped_spans"`
}

// AnalyzeChip profiles a completed traced run. The chip must have had an
// obs.Tracer attached before Run: the critical path walks the recorded
// spans and dependency edges, which do not exist otherwise.
func AnalyzeChip(ch *emu.Chip) (*Profile, error) {
	tr := ch.Tracer()
	if tr == nil {
		return nil, fmt.Errorf("profile: chip was not traced; attach an obs.Tracer before Run")
	}
	p := &Profile{
		Rows: ch.P.GridRows(), Cols: ch.P.GridCols(), Cores: ch.ActiveCount(),
		ClockHz:      ch.P.Clock,
		RunCycles:    ch.MaxCycles(),
		Seconds:      ch.Time(),
		Total:        ch.TotalStats(),
		DroppedSpans: tr.Dropped(),
	}
	if ch.P.NumChips() > 1 {
		t := ch.Topology()
		p.ChipRows, p.ChipCols = t.ChipRows(), t.ChipCols()
	}
	p.TotalEnergy = energy.EpiphanyBreakdown(p.Total, p.Seconds)
	p.Phases = attributePhases(ch)
	p.Critical = criticalPath(ch)
	p.Heatmap = buildHeatmap(ch)
	p.Faults = buildDegradation(ch)
	return p, nil
}

// trackSpans caches one track's spans in chronological order (Track.Spans
// copies out of the ring on every call).
type trackSpans struct {
	track *obs.Track
	core  int // core ID, or -1 for synthetic tracks
	spans []obs.Span
}

// coreTracks snapshots the span streams of the active cores.
func coreTracks(ch *emu.Chip) []trackSpans {
	out := make([]trackSpans, ch.ActiveCount())
	for i := range out {
		t := ch.CoreTrack(i)
		out[i] = trackSpans{track: t, core: i, spans: t.Spans()}
	}
	return out
}
