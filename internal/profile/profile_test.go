package profile_test

import (
	"bytes"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sarmany/internal/bench"
	"sarmany/internal/emu"
	"sarmany/internal/energy"
	"sarmany/internal/kernels"
	"sarmany/internal/machine"
	"sarmany/internal/obs"
	"sarmany/internal/profile"
	"sarmany/internal/report"
	"sarmany/internal/sar"
)

// tracedFFBP runs the 16-core parallel FFBP at the reduced workload with
// tracing enabled — the reference run the acceptance tests profile. The
// run is shared across tests (the chip is read-only after Run).
var tracedFFBP = sync.OnceValue(func() *emu.Chip {
	cfg := report.Small()
	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	ch := emu.New(cfg.Epiphany)
	tr := obs.NewTracer(cfg.Epiphany.Clock)
	tr.SetCapacity(1 << 16)
	ch.SetTracer(tr)
	if _, _, err := kernels.ParFFBP(ch, 16, data, cfg.Params, cfg.Box); err != nil {
		panic(err)
	}
	return ch
})

func analyzeFFBP(t *testing.T) *profile.Profile {
	t.Helper()
	p, err := profile.AnalyzeChip(tracedFFBP())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAnalyzeRequiresTracer(t *testing.T) {
	ch := emu.New(emu.E16G3())
	ch.Run(2, func(c *emu.Core) { c.FMA(10) })
	if _, err := profile.AnalyzeChip(ch); err == nil {
		t.Fatal("AnalyzeChip accepted an untraced chip")
	}
}

// TestCriticalPathReconciles is the tentpole acceptance check: on a traced
// 16-core FFBP run the critical path's per-cause totals must partition the
// run — their sum within 1% of the run's cycle count (it is exact by
// construction) — and the segment chain must tile [0, RunCycles]
// contiguously in time.
func TestCriticalPathReconciles(t *testing.T) {
	p := analyzeFFBP(t)
	if p.DroppedSpans != 0 {
		t.Fatalf("%d spans dropped; raise the test tracer capacity", p.DroppedSpans)
	}
	sum := p.Critical.Cycles()
	if diff := math.Abs(sum - p.RunCycles); diff > 0.01*p.RunCycles {
		t.Errorf("critical-path cause totals sum to %.0f cycles, run is %.0f (diff %.2f%%)",
			sum, p.RunCycles, 100*diff/p.RunCycles)
	}

	segs := p.Critical.Segments
	if len(segs) == 0 {
		t.Fatal("empty critical path")
	}
	if segs[0].Start > 1e-6 {
		t.Errorf("path starts at %.0f, want 0", segs[0].Start)
	}
	if end := segs[len(segs)-1].End; math.Abs(end-p.RunCycles) > 1e-6 {
		t.Errorf("path ends at %.0f, want %.0f", end, p.RunCycles)
	}
	for i := 1; i < len(segs); i++ {
		if math.Abs(segs[i].Start-segs[i-1].End) > 1e-6 {
			t.Errorf("segment %d starts at %.2f but previous ends at %.2f",
				i, segs[i].Start, segs[i-1].End)
		}
	}

	// FFBP is the paper's bandwidth-bound kernel: real compute must be on
	// the path, and the walk must attribute something to waiting (ext
	// reads, DMA, barrier drain) rather than labeling everything compute.
	if p.Critical.ByCause["compute"] <= 0 {
		t.Error("no compute on the critical path")
	}
	wait := p.Critical.ByCause["ext.drain"] + p.Critical.ByCause["stall.ext"] +
		p.Critical.ByCause["stall.dma"] + p.Critical.ByCause["stall.barrier"]
	if wait <= 0 {
		t.Error("no waiting attributed on the critical path of a bandwidth-bound kernel")
	}
	if idle := p.Critical.ByCause["idle"]; idle > 0.05*p.RunCycles {
		t.Errorf("%.1f%% of the path is unattributed idle", 100*idle/p.RunCycles)
	}
}

// TestPhaseEnergyReconciles: the per-phase energy rows must sum
// component-wise to the whole-run internal/energy estimate, and the rows
// must partition the run in time.
func TestPhaseEnergyReconciles(t *testing.T) {
	p := analyzeFFBP(t)
	sum := profile.SumEnergy(p.Phases)
	whole := energy.EpiphanyBreakdown(p.Total, p.Seconds)
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"compute", sum.ComputeJ, whole.ComputeJ},
		{"localmem", sum.LocalMemJ, whole.LocalMemJ},
		{"noc", sum.NoCJ, whole.NoCJ},
		{"elink", sum.ELinkJ, whole.ELinkJ},
		{"static", sum.StaticJ, whole.StaticJ},
		{"total", sum.Total(), whole.Total()},
	} {
		if diff := math.Abs(c.got - c.want); diff > 1e-9*math.Max(1, math.Abs(c.want)) {
			t.Errorf("%s: phase rows sum to %.6e J, whole-run estimate is %.6e J", c.name, c.got, c.want)
		}
	}

	var prev float64
	for i, ph := range p.Phases {
		if math.Abs(ph.Start-prev) > 1e-6 {
			t.Errorf("phase row %d starts at %.0f, previous ended at %.0f", i, ph.Start, prev)
		}
		prev = ph.End
	}
	if math.Abs(prev-p.RunCycles) > 1e-6 {
		t.Errorf("phase rows end at %.0f, run is %.0f cycles", prev, p.RunCycles)
	}
	// FFBP's merge phases move every intermediate image over the eLink:
	// at least one phase must be bandwidth-bound in both views.
	var modelBW, roofBW bool
	for _, ph := range p.Phases {
		modelBW = modelBW || ph.Bound == "bandwidth"
		roofBW = roofBW || (ph.Index >= 0 && ph.Roofline.Bound() == "bandwidth")
	}
	if !modelBW || !roofBW {
		t.Errorf("no bandwidth-bound phase (contention model: %v, roofline: %v)", modelBW, roofBW)
	}
}

// linkWorkload builds a two-core producer/consumer run where the consumer
// demonstrably waits on the link, plus a bandwidth-bound barrier phase.
func linkWorkload(t *testing.T) *emu.Chip {
	t.Helper()
	ch := emu.New(emu.E16G3())
	tr := obs.NewTracer(1e9)
	ch.SetTracer(tr)
	ext, err := machine.NewBufC(ch.Ext(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	link := ch.Connect(0, 5, 2) // (0,0) -> (1,1): two physical hops
	ch.Run(16, func(c *emu.Core) {
		if c.ID == 0 {
			c.FMA(5000) // producer computes, consumer waits on the link
			local, err := machine.NewBufC(c.Bank(2), 64)
			if err != nil {
				t.Error(err)
				return
			}
			link.Send(c, local.Data[:32])
		}
		if c.ID == 5 {
			link.Recv(c)
		}
		// Everyone floods the off-chip channel so the closing barrier is
		// bandwidth-bound.
		for i := 0; i < 40; i++ {
			ext.Store(c, c.ID*64+i, 1)
		}
		c.Barrier()
	})
	return ch
}

func TestCriticalPathFollowsLinkAndDrain(t *testing.T) {
	ch := linkWorkload(t)
	p, err := profile.AnalyzeChip(ch)
	if err != nil {
		t.Fatal(err)
	}
	if p.Critical.ByCause["ext.drain"] <= 0 {
		t.Errorf("bandwidth-bound barrier contributed no ext.drain; causes: %v", p.Critical.ByCause)
	}
	// The consumer's link wait must appear, and the chain must cross from
	// the consumer's track back onto the producer's.
	if p.Critical.ByCause["stall.link"] <= 0 {
		t.Errorf("no stall.link on the path; causes: %v", p.Critical.ByCause)
	}
	var sawProducer, sawConsumer bool
	for _, s := range p.Critical.Segments {
		switch s.Track {
		case "core 0":
			sawProducer = true
		case "core 5":
			sawConsumer = true
		}
	}
	if !sawProducer || !sawConsumer {
		t.Errorf("path tracks producer=%v consumer=%v; segments: %+v",
			sawProducer, sawConsumer, p.Critical.Segments)
	}
	if sum := p.Critical.Cycles(); math.Abs(sum-p.RunCycles) > 0.01*p.RunCycles {
		t.Errorf("path sums to %.0f of %.0f cycles", sum, p.RunCycles)
	}
}

func TestHeatmapXYRouting(t *testing.T) {
	ch := linkWorkload(t)
	p, err := profile.AnalyzeChip(ch)
	if err != nil {
		t.Fatal(err)
	}
	h := p.Heatmap
	if len(h.Links) != 1 || h.Links[0].Bytes == 0 {
		t.Fatalf("link stats: %+v", h.Links)
	}
	// Core 0 is (0,0), core 5 is (1,1): XY routing goes east then south.
	want := []profile.MeshEdge{
		{FromRow: 0, FromCol: 0, ToRow: 0, ToCol: 1, Bytes: h.Links[0].Bytes},
		{FromRow: 0, FromCol: 1, ToRow: 1, ToCol: 1, Bytes: h.Links[0].Bytes},
	}
	if len(h.MeshEdges) != 2 || h.MeshEdges[0] != want[0] || h.MeshEdges[1] != want[1] {
		t.Errorf("mesh edges = %+v, want %+v", h.MeshEdges, want)
	}
	if h.MaxEdgeBytes() != h.Links[0].Bytes {
		t.Errorf("MaxEdgeBytes = %d", h.MaxEdgeBytes())
	}
	// All 16 cores ran; every cell must carry a busy fraction in [0, 1].
	for i, b := range h.CoreBusy {
		if b < 0 || b > 1 {
			t.Errorf("core %d busy fraction %v", i, b)
		}
	}
}

func TestWriteTextReport(t *testing.T) {
	p := analyzeFFBP(t)
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"critical path", "per-phase energy attribution", "mesh heatmap",
		"compute", "cause", "flop/cy", "total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("drop warning printed without drops:\n%s", out)
	}
}

func TestWriteTextReportWarnsOnDrops(t *testing.T) {
	ch := emu.New(emu.E16G3())
	tr := obs.NewTracer(1e9)
	tr.SetCapacity(2)
	ch.SetTracer(tr)
	ch.Run(2, func(c *emu.Core) {
		for i := 0; i < 8; i++ {
			c.FMA(10)
			c.Barrier()
		}
	})
	p, err := profile.AnalyzeChip(ch)
	if err != nil {
		t.Fatal(err)
	}
	if p.DroppedSpans == 0 {
		t.Fatal("workload did not overflow the 2-span rings")
	}
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "WARNING") {
		t.Errorf("no drop warning in report:\n%s", buf.String())
	}
}

func TestWriteHTMLReport(t *testing.T) {
	p := analyzeFFBP(t)
	var buf bytes.Buffer
	if err := p.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "Critical path", "Per-phase energy attribution",
		"Mesh heatmap", "</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
	if strings.Contains(out, "http://") || strings.Contains(out, "https://") ||
		strings.Contains(out, "<script") {
		t.Error("HTML report is not self-contained")
	}
}

// TestProfileThroughput measures the analyzer's span throughput on the
// traced 16-core FFBP run and, when PROFBENCH_OUT names a directory,
// records it as a BENCH_profile.json envelope — the `make profbench`
// target. Wall-clock figures are host-dependent and recorded, not
// asserted; the deterministic trace shape (spans, cycles) is what the
// benchdiff gate compares.
func TestProfileThroughput(t *testing.T) {
	out := os.Getenv("PROFBENCH_OUT")
	if out == "" {
		t.Skip("PROFBENCH_OUT not set")
	}
	ch := tracedFFBP()
	var spans int
	for _, tk := range ch.Tracer().Tracks() {
		spans += tk.Len()
	}

	const iters = 5
	var p *profile.Profile
	start := time.Now()
	for i := 0; i < iters; i++ {
		var err error
		p, err = profile.AnalyzeChip(ch)
		if err != nil {
			t.Fatal(err)
		}
	}
	sec := time.Since(start).Seconds() / iters
	t.Logf("analyzed %d spans in %.3fs (%.0f spans/s, %d path segments)",
		spans, sec, float64(spans)/sec, len(p.Critical.Segments))

	env := bench.Result{
		Name: "profile", Title: "Trace analyzer throughput (16-core FFBP)",
		Pulses: report.Small().Params.NumPulses, Bins: report.Small().Params.NumBins,
		Data: struct {
			Cores          int     `json:"cores"`
			Spans          int     `json:"spans"`
			RunCycles      float64 `json:"run_cycles"`
			PathSegments   int     `json:"path_segments"`
			PathCauses     int     `json:"path_causes"`
			PhaseRows      int     `json:"phase_rows"`
			HostCPUs       int     `json:"host_cpus"`
			AnalyzeSeconds float64 `json:"analyze_seconds"`
			SpansPerSec    float64 `json:"spans_per_sec"`
		}{
			Cores: p.Cores, Spans: spans, RunCycles: p.RunCycles,
			PathSegments: len(p.Critical.Segments), PathCauses: len(p.Critical.ByCause),
			PhaseRows: len(p.Phases), HostCPUs: runtime.GOMAXPROCS(0),
			AnalyzeSeconds: sec, SpansPerSec: float64(spans) / sec,
		},
	}
	path, err := bench.WriteFile(out, env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
