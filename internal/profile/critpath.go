package profile

import (
	"sort"

	"sarmany/internal/emu"
	"sarmany/internal/obs"
)

// PathSegment is one link of the critical path: on track Track, the
// interval (Start, End] was consumed by Cause. Causes are the span-kind
// names ("compute", "stall.ext", ...) plus two synthetic ones: "ext.drain"
// for the off-chip channel drain that resolves a bandwidth-bound barrier,
// and "idle" for untraced gaps (including trace-ring truncation).
type PathSegment struct {
	Track string  `json:"track"`
	Cause string  `json:"cause"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Duration returns the segment length in cycles.
func (s PathSegment) Duration() float64 { return s.End - s.Start }

// CriticalPath is the longest dependency chain through a run: a
// chronological sequence of segments whose durations partition
// [0, RunCycles] exactly, so the per-cause totals answer "what would I
// have to speed up to make the whole run faster" — time off the path is
// hidden by overlap and speeding it up changes nothing.
type CriticalPath struct {
	Segments []PathSegment `json:"segments"`
	// ByCause sums segment durations per cause; the values add up to the
	// run length by construction.
	ByCause map[string]float64 `json:"by_cause"`
}

// Cycles returns the summed segment durations (the run length).
func (cp CriticalPath) Cycles() float64 {
	var t float64
	for _, v := range cp.ByCause {
		t += v
	}
	return t
}

// Causes returns the cause names sorted by descending total.
func (cp CriticalPath) Causes() []string {
	out := make([]string, 0, len(cp.ByCause))
	for k := range cp.ByCause {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if cp.ByCause[out[i]] != cp.ByCause[out[j]] {
			return cp.ByCause[out[i]] > cp.ByCause[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// eps absorbs float rounding when matching span ends against phase ends
// and edge arrival times (all are sums of the same cycle quantities, so
// real mismatches are whole cycles, not ulps).
const eps = 1e-6

// maxPathSteps bounds the backward walk; a run long enough to hit it
// would have overflowed every span ring long before.
const maxPathSteps = 1 << 22

// criticalPath walks backward from the end of the run, at every step
// asking "what was the last thing that had to finish for time t to be
// reached on this track" and crossing to another track when a recorded
// dependency edge (link handoff, back-pressure release) or a barrier
// resolution says the wait ended elsewhere.
func criticalPath(ch *emu.Chip) CriticalPath {
	tracks := coreTracks(ch)
	phases := ch.Phases()
	end := ch.MaxCycles()

	cp := CriticalPath{ByCause: map[string]float64{}}
	if end <= 0 || len(tracks) == 0 {
		return cp
	}

	// Start on the core that finished last.
	cur := 0
	for i := range tracks {
		if c := ch.Cores[i].Cycles(); c > ch.Cores[cur].Cycles() {
			cur = i
		}
	}

	push := func(track string, cause string, from, to float64) {
		if to-from <= eps {
			return
		}
		n := len(cp.Segments)
		// Merge with the previous (chronologically later) segment when
		// cause and track repeat — keeps barrier-heavy paths compact.
		if n > 0 && cp.Segments[n-1].Track == track && cp.Segments[n-1].Cause == cause &&
			cp.Segments[n-1].Start-to <= eps {
			cp.Segments[n-1].Start = from
		} else {
			cp.Segments = append(cp.Segments, PathSegment{Track: track, Cause: cause, Start: from, End: to})
		}
		cp.ByCause[cause] += to - from
	}

	t := end
	for steps := 0; t > eps && steps < maxPathSteps; steps++ {
		tk := &tracks[cur]
		name := tk.track.Name()
		s, ok := lastSpanBefore(tk.spans, t)
		if !ok {
			// Nothing traced before t on this track (trace truncated or
			// the core simply had not started): idle to time zero.
			push(name, "idle", 0, t)
			t = 0
			break
		}
		if s.End < t-eps {
			// Untraced gap between the span's end and t.
			push(name, "idle", s.End, t)
			t = s.End
			continue
		}

		switch s.Kind {
		case obs.KindStallBarrier:
			p, ok := phaseEndingAt(phases, s.End)
			if !ok {
				push(name, s.Kind.String(), s.Start, t)
				t = s.Start
				continue
			}
			bind := bindingCore(tracks, p)
			if p.BandwidthBound && p.SlowestCore < t-eps {
				// The barrier resolved when the off-chip channel finished
				// draining the phase's traffic, after every core was parked.
				push(name, "ext.drain", p.SlowestCore, t)
				t = p.SlowestCore
				cur = bind
				continue
			}
			if bind != cur {
				// Continue on the core whose work determined the
				// last-arrival time; its final pre-barrier span ends at t
				// so the next step attributes real work, not this barrier.
				cur = bind
				continue
			}
			// Already on the binding core yet looking at its own barrier
			// span (possible only when its pre-barrier spans were dropped
			// from the ring): attribute the wait directly instead of
			// cycling through bindingCore again.
			push(name, s.Kind.String(), s.Start, t)
			t = s.Start
		case obs.KindStallLink:
			if e, ok := edgeAt(tk.track.Deps(), s.End); ok && e.SrcTime < t-eps {
				// The wait ended because the peer (producer of the block,
				// or consumer freeing a back-pressured slot) reached
				// e.SrcTime: charge the wait plus transit here, then
				// follow the chain onto the peer's track.
				push(name, s.Kind.String(), e.SrcTime, t)
				t = e.SrcTime
				cur = coreIndexOf(tracks, e.Src)
				continue
			}
			push(name, s.Kind.String(), s.Start, t)
			t = s.Start
		default:
			push(name, s.Kind.String(), s.Start, t)
			t = s.Start
		}
	}
	if t > eps {
		// Walk exhausted its step budget: account the remainder so the
		// totals still partition the run.
		push("(truncated)", "idle", 0, t)
	}
	reverse(cp.Segments)
	return cp
}

// lastSpanBefore returns the latest span starting strictly before t.
// Spans are in chronological order, so binary-search the start times.
func lastSpanBefore(spans []obs.Span, t float64) (obs.Span, bool) {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].Start >= t-eps })
	if i == 0 {
		return obs.Span{}, false
	}
	return spans[i-1], true
}

// phaseEndingAt finds the phase whose resolution time matches a barrier
// stall's end. Later phases win when zero-duration phases share an end.
func phaseEndingAt(phases []emu.PhaseRecord, end float64) (emu.PhaseRecord, bool) {
	for i := len(phases) - 1; i >= 0; i-- {
		if d := phases[i].End - end; d < eps && d > -eps {
			return phases[i], true
		}
	}
	return emu.PhaseRecord{}, false
}

// bindingCore picks the core whose compute determined a phase's
// last-arrival time: the one whose latest non-barrier span inside the
// phase ends last. Ties go to the lower core ID (deterministic).
func bindingCore(tracks []trackSpans, p emu.PhaseRecord) int {
	best, bestEnd := 0, -1.0
	for i := range tracks {
		for j := len(tracks[i].spans) - 1; j >= 0; j-- {
			s := tracks[i].spans[j]
			if s.End > p.SlowestCore+eps || s.Kind == obs.KindStallBarrier {
				continue
			}
			if s.End <= p.Start+eps {
				break
			}
			if s.End > bestEnd+eps {
				best, bestEnd = i, s.End
			}
			break // only the latest qualifying span per track matters
		}
	}
	return best
}

// edgeAt finds the dependency edge whose unblock time matches a link
// stall's end.
func edgeAt(deps []obs.Edge, at float64) (obs.Edge, bool) {
	for i := len(deps) - 1; i >= 0; i-- {
		if d := deps[i].At - at; d < eps && d > -eps {
			return deps[i], true
		}
	}
	return obs.Edge{}, false
}

// coreIndexOf maps an edge's source track back to its core index; a track
// that is not an active core's (cannot happen for edges the emulator
// records) falls back to core 0.
func coreIndexOf(tracks []trackSpans, t *obs.Track) int {
	for i := range tracks {
		if tracks[i].track == t {
			return i
		}
	}
	return 0
}

func reverse(s []PathSegment) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
