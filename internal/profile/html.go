package profile

import (
	"fmt"
	"html/template"
	"io"
)

// WriteHTML renders the profile as one self-contained HTML page — inline
// CSS only, no external assets or scripts — with the critical-path cause
// bars, the per-phase energy table, and a colored mesh heatmap.
func (p *Profile) WriteHTML(w io.Writer) error {
	return htmlTmpl.Execute(w, newHTMLView(p))
}

// htmlView is the template's flattened, pre-formatted model.
type htmlView struct {
	Title   string
	Warning string
	Causes  []htmlCause
	Phases  []htmlPhase
	Total   htmlPhase
	Grid    [][]htmlCell
	Links   []htmlLink
	Faults  *htmlFaults
}

type htmlFaults struct {
	Halted   string
	Rows     []htmlFaultRow
	Overhead htmlFaultRow
}

type htmlFaultRow struct {
	Kind, Target, Events, Cycles, EnergyJ, Note string
}

type htmlCause struct {
	Name   string
	Cycles string
	Share  string
	Width  float64 // percent, for the bar
}

type htmlPhase struct {
	Name, Cycles, Bound, Roofline            string
	Compute, LocalMem, NoC, ELink, Static    string
	TotalJ, FlopPerCycle, BytePerCycle, Note string
}

type htmlCell struct {
	Label string
	Busy  string
	Color template.CSS
}

type htmlLink struct {
	Name, Blocks, Bytes, SendWait, RecvWait string
}

func newHTMLView(p *Profile) htmlView {
	v := htmlView{
		Title: fmt.Sprintf("sarprof — epiphany %dx%d, %d cores, %.0f cycles (%.3f ms)",
			p.Rows, p.Cols, p.Cores, p.RunCycles, p.Seconds*1e3),
	}
	if p.DroppedSpans > 0 {
		v.Warning = fmt.Sprintf("%d spans dropped (trace ring overflow): the critical path may be truncated; rerun with a larger trace capacity.", p.DroppedSpans)
	}
	for _, cause := range p.Critical.Causes() {
		cy := p.Critical.ByCause[cause]
		share := cy / p.RunCycles
		v.Causes = append(v.Causes, htmlCause{
			Name:   cause,
			Cycles: fmt.Sprintf("%.0f", cy),
			Share:  fmt.Sprintf("%.1f%%", share*100),
			Width:  share * 100,
		})
	}
	for _, ph := range p.Phases {
		name, bound := fmt.Sprintf("%d", ph.Index), ph.Bound
		if ph.Index < 0 {
			name, bound = "tail", "-"
		}
		v.Phases = append(v.Phases, htmlPhase{
			Name: name, Cycles: fmt.Sprintf("%.0f", ph.Cycles()),
			Bound: bound, Roofline: ph.Roofline.Bound(),
			Compute:      fmt.Sprintf("%.2e", ph.Energy.ComputeJ),
			LocalMem:     fmt.Sprintf("%.2e", ph.Energy.LocalMemJ),
			NoC:          fmt.Sprintf("%.2e", ph.Energy.NoCJ),
			ELink:        fmt.Sprintf("%.2e", ph.Energy.ELinkJ),
			Static:       fmt.Sprintf("%.2e", ph.Energy.StaticJ),
			TotalJ:       fmt.Sprintf("%.3e", ph.Energy.Total()),
			FlopPerCycle: fmt.Sprintf("%.2f", ph.Roofline.FlopPerCycle),
			BytePerCycle: fmt.Sprintf("%.3f", ph.Roofline.BytePerCycle),
		})
	}
	t := p.TotalEnergy
	v.Total = htmlPhase{
		Name: "total", Cycles: fmt.Sprintf("%.0f", p.RunCycles),
		Compute:  fmt.Sprintf("%.2e", t.ComputeJ),
		LocalMem: fmt.Sprintf("%.2e", t.LocalMemJ),
		NoC:      fmt.Sprintf("%.2e", t.NoCJ),
		ELink:    fmt.Sprintf("%.2e", t.ELinkJ),
		Static:   fmt.Sprintf("%.2e", t.StaticJ),
		TotalJ:   fmt.Sprintf("%.3e", t.Total()),
		Note:     fmt.Sprintf("avg %.2f W", t.AveragePower(p.Seconds)),
	}
	for r := 0; r < p.Heatmap.Rows; r++ {
		row := make([]htmlCell, p.Heatmap.Cols)
		for c := 0; c < p.Heatmap.Cols; c++ {
			busy := p.Heatmap.CoreBusy[r*p.Heatmap.Cols+c]
			row[c] = htmlCell{
				Label: fmt.Sprintf("%d", r*p.Heatmap.Cols+c),
				Busy:  fmt.Sprintf("%.0f%%", busy*100),
				// White (idle) to saturated red (fully busy).
				Color: template.CSS(fmt.Sprintf("rgb(255,%d,%d)",
					int(255*(1-busy)), int(255*(1-busy)))),
			}
		}
		v.Grid = append(v.Grid, row)
	}
	if d := p.Faults; d != nil {
		f := &htmlFaults{}
		if len(d.HaltedCores) > 0 {
			f.Halted = fmt.Sprintf("halted cores %v, %d slot(s) remapped", d.HaltedCores, d.RemappedSlots)
		}
		for _, r := range d.Rows {
			f.Rows = append(f.Rows, htmlFaultRow{
				Kind: r.Kind, Target: r.Target,
				Events:  fmt.Sprintf("%d", r.Events),
				Cycles:  fmt.Sprintf("%.0f", r.Cycles),
				EnergyJ: fmt.Sprintf("%.3e", r.EnergyJ),
			})
		}
		f.Overhead = htmlFaultRow{
			Kind:    "overhead",
			Cycles:  fmt.Sprintf("%.0f", d.OverheadCycles),
			EnergyJ: fmt.Sprintf("%.3e", d.OverheadEnergyJ),
			Note:    fmt.Sprintf("%.2f%% of run", 100*d.OverheadCycles/p.RunCycles),
		}
		v.Faults = f
	}
	for _, l := range p.Heatmap.Links {
		v.Links = append(v.Links, htmlLink{
			Name:     fmt.Sprintf("%d → %d (%d hops)", l.From, l.To, l.Hops),
			Blocks:   fmt.Sprintf("%d", l.Blocks),
			Bytes:    fmt.Sprintf("%d", l.Bytes),
			SendWait: fmt.Sprintf("%.0f", l.SendWait),
			RecvWait: fmt.Sprintf("%.0f", l.RecvWait),
		})
	}
	return v
}

var htmlTmpl = template.Must(template.New("profile").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 64em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; } td, th { padding: 2px 10px; text-align: right; }
th { border-bottom: 1px solid #999; } td:first-child, th:first-child { text-align: left; }
tr.total td { border-top: 1px solid #999; font-weight: 600; }
.warn { background: #fff3cd; border: 1px solid #cc9a06; padding: 0.5em 1em; }
.bar { display: inline-block; height: 0.8em; background: #4a7ebb; vertical-align: middle; }
.grid td { width: 3.2em; height: 3.2em; text-align: center; border: 1px solid #ccc; }
.grid small { color: #666; display: block; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{if .Warning}}<p class="warn">⚠ {{.Warning}}</p>{{end}}

<h2>Critical path</h2>
<table>
<tr><th>cause</th><th>cycles</th><th>share</th><th style="text-align:left"></th></tr>
{{range .Causes}}<tr><td>{{.Name}}</td><td>{{.Cycles}}</td><td>{{.Share}}</td>
<td style="text-align:left"><span class="bar" style="width:{{printf "%.1f" .Width}}%; min-width:1px"></span></td></tr>
{{end}}</table>

<h2>Per-phase energy attribution</h2>
<table>
<tr><th>phase</th><th>cycles</th><th>bound</th><th>roofline</th><th>compute J</th><th>local mem J</th><th>NoC J</th><th>eLink J</th><th>static J</th><th>total J</th><th>flop/cy</th><th>B/cy</th></tr>
{{range .Phases}}<tr><td>{{.Name}}</td><td>{{.Cycles}}</td><td>{{.Bound}}</td><td>{{.Roofline}}</td><td>{{.Compute}}</td><td>{{.LocalMem}}</td><td>{{.NoC}}</td><td>{{.ELink}}</td><td>{{.Static}}</td><td>{{.TotalJ}}</td><td>{{.FlopPerCycle}}</td><td>{{.BytePerCycle}}</td></tr>
{{end}}{{with .Total}}<tr class="total"><td>{{.Name}}</td><td>{{.Cycles}}</td><td></td><td></td><td>{{.Compute}}</td><td>{{.LocalMem}}</td><td>{{.NoC}}</td><td>{{.ELink}}</td><td>{{.Static}}</td><td>{{.TotalJ}}</td><td colspan="2">{{.Note}}</td></tr>{{end}}
</table>

{{with .Faults}}<h2>Fault degradation</h2>
{{if .Halted}}<p>{{.Halted}}</p>{{end}}
<table>
<tr><th>kind</th><th>target</th><th>events</th><th>cycles</th><th>energy J</th><th></th></tr>
{{range .Rows}}<tr><td>{{.Kind}}</td><td>{{.Target}}</td><td>{{.Events}}</td><td>{{.Cycles}}</td><td>{{.EnergyJ}}</td><td></td></tr>
{{end}}{{with .Overhead}}<tr class="total"><td>{{.Kind}}</td><td></td><td></td><td>{{.Cycles}}</td><td>{{.EnergyJ}}</td><td>{{.Note}}</td></tr>{{end}}
</table>{{end}}

<h2>Mesh heatmap (busy fraction)</h2>
<table class="grid">
{{range .Grid}}<tr>{{range .}}<td style="background:{{.Color}}"><small>core {{.Label}}</small>{{.Busy}}</td>{{end}}</tr>
{{end}}</table>

{{if .Links}}<h2>Link occupancy</h2>
<table>
<tr><th>link</th><th>blocks</th><th>bytes</th><th>send wait</th><th>recv wait</th></tr>
{{range .Links}}<tr><td>{{.Name}}</td><td>{{.Blocks}}</td><td>{{.Bytes}}</td><td>{{.SendWait}}</td><td>{{.RecvWait}}</td></tr>
{{end}}</table>{{end}}
</body>
</html>
`))
