package profile

import "sarmany/internal/emu"

// Heatmap locates a run's activity on the physical mesh: per-core busy
// fractions, and per-link byte counts with the logical core-to-core links
// expanded onto the directed physical mesh edges their traffic actually
// crosses under the eGrid's XY (row-first) dimension-ordered routing.
type Heatmap struct {
	// Rows, Cols are the global core-grid dimensions — across every chip
	// of a multi-chip array. ChipRows/ChipCols give the chip-array
	// arrangement (omitted for a single chip), so consumers can draw the
	// chip boundaries the eLink bridges sit on.
	Rows     int `json:"rows"`
	Cols     int `json:"cols"`
	ChipRows int `json:"chip_rows,omitempty"`
	ChipCols int `json:"chip_cols,omitempty"`

	// CoreBusy[r*Cols+c] is the fraction of the run core (r,c) spent in
	// committed compute windows; CoreCycles its total active cycles.
	CoreBusy   []float64 `json:"core_busy"`
	CoreCycles []float64 `json:"core_cycles"`

	// Links is the logical link occupancy (streaming connections), and
	// MeshEdges the same traffic accumulated per physical directed edge.
	Links     []emu.LinkStat `json:"links"`
	MeshEdges []MeshEdge     `json:"mesh_edges"`
}

// MeshEdge is one directed physical mesh edge and the bytes routed over
// it. Edges carrying no traffic are omitted.
type MeshEdge struct {
	FromRow int    `json:"from_row"`
	FromCol int    `json:"from_col"`
	ToRow   int    `json:"to_row"`
	ToCol   int    `json:"to_col"`
	Bytes   uint64 `json:"bytes"`
}

// buildHeatmap computes the mesh view from per-core statistics and the
// logical link table.
func buildHeatmap(ch *emu.Chip) Heatmap {
	h := Heatmap{
		Rows: ch.P.GridRows(), Cols: ch.P.GridCols(),
		CoreBusy:   make([]float64, ch.P.NumCores()),
		CoreCycles: make([]float64, ch.P.NumCores()),
		Links:      ch.LinkStats(),
	}
	if t := ch.Topology(); t.NumChips() > 1 {
		h.ChipRows, h.ChipCols = t.ChipRows(), t.ChipCols()
	}
	run := ch.MaxCycles()
	for i, c := range ch.Cores {
		h.CoreCycles[i] = c.Cycles()
		if run > 0 {
			h.CoreBusy[i] = c.Stats.ComputeCycles / run
		}
	}

	// Expand each logical link onto physical edges: XY routing goes along
	// the row (east/west) to the destination column, then along the
	// column (north/south).
	edges := map[[4]int]uint64{}
	for _, l := range h.Links {
		if l.Bytes == 0 {
			continue
		}
		r, c := l.From/h.Cols, l.From%h.Cols
		dr, dc := l.To/h.Cols, l.To%h.Cols
		for c != dc {
			nc := c + step(dc-c)
			edges[[4]int{r, c, r, nc}] += l.Bytes
			c = nc
		}
		for r != dr {
			nr := r + step(dr-r)
			edges[[4]int{r, c, nr, c}] += l.Bytes
			r = nr
		}
	}
	// Deterministic order: row-major by source, then destination.
	for r := 0; r < h.Rows; r++ {
		for c := 0; c < h.Cols; c++ {
			for _, d := range [][2]int{{r, c + 1}, {r, c - 1}, {r + 1, c}, {r - 1, c}} {
				if b := edges[[4]int{r, c, d[0], d[1]}]; b > 0 {
					h.MeshEdges = append(h.MeshEdges, MeshEdge{
						FromRow: r, FromCol: c, ToRow: d[0], ToCol: d[1], Bytes: b,
					})
				}
			}
		}
	}
	return h
}

// MaxEdgeBytes returns the hottest physical edge's byte count (0 when no
// link traffic was routed).
func (h Heatmap) MaxEdgeBytes() uint64 {
	var max uint64
	for _, e := range h.MeshEdges {
		if e.Bytes > max {
			max = e.Bytes
		}
	}
	return max
}

func step(d int) int {
	if d > 0 {
		return 1
	}
	return -1
}
