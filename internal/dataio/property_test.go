package dataio

import (
	"bytes"
	"testing"
	"testing/quick"

	"sarmany/internal/mat"
	"sarmany/internal/sar"
)

// TestRoundTripProperty: any matrix/params pair survives serialization
// bit for bit.
func TestRoundTripProperty(t *testing.T) {
	f := func(rows, cols uint8, seed int64, r0, dr float64) bool {
		nr := int(rows)%16 + 1
		nc := int(cols)%16 + 1
		p := sar.DefaultParams()
		p.NumPulses = nr
		p.NumBins = nc
		p.R0 = 1 + mod(r0, 1e5)
		p.DR = 0.1 + mod(dr, 10)
		m := mat.NewC(nr, nc)
		s := seed
		for i := range m.Data {
			s = s*6364136223846793005 + 1442695040888963407
			m.Data[i] = complex(float32(s>>40), float32(s>>50))
		}
		var buf bytes.Buffer
		if err := Write(&buf, p, m); err != nil {
			return false
		}
		p2, m2, err := Read(&buf)
		if err != nil {
			return false
		}
		return p2 == p && m2.Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mod(x, m float64) float64 {
	if x != x || x > 1e18 || x < -1e18 {
		return 1
	}
	v := x
	if v < 0 {
		v = -v
	}
	for v >= m {
		v /= 2
	}
	return v
}
