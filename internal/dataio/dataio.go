// Package dataio defines the on-disk format the command-line tools use to
// pass radar data between stages: a small self-describing binary container
// holding the radar parameters and a complex64 matrix (pulse-compressed
// data or a formed image), little-endian.
package dataio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"sarmany/internal/mat"
	"sarmany/internal/sar"
)

// magic identifies the container format ("SARDATA" + version 1).
var magic = [8]byte{'S', 'A', 'R', 'D', 'A', 'T', 'A', '1'}

// header is the fixed-size binary header following the magic.
type header struct {
	Rows, Cols        int32
	NumPulses         int32
	NumBins           int32
	EnvelopeHalfWidth int32
	_                 int32 // padding for 8-byte alignment
	R0, DR            float64
	PulseSpacing      float64
	Wavelength        float64
	RangeRes          float64
}

// Write serializes params and the matrix to w.
func Write(w io.Writer, p sar.Params, m *mat.C) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	h := header{
		Rows: int32(m.Rows), Cols: int32(m.Cols),
		NumPulses: int32(p.NumPulses), NumBins: int32(p.NumBins),
		EnvelopeHalfWidth: int32(p.EnvelopeHalfWidth),
		R0:                p.R0, DR: p.DR,
		PulseSpacing: p.PulseSpacing,
		Wavelength:   p.Wavelength,
		RangeRes:     p.RangeRes,
	}
	if err := binary.Write(bw, binary.LittleEndian, &h); err != nil {
		return err
	}
	buf := make([]byte, 8*m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i, v := range row {
			binary.LittleEndian.PutUint32(buf[8*i:], math.Float32bits(real(v)))
			binary.LittleEndian.PutUint32(buf[8*i+4:], math.Float32bits(imag(v)))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a container written by Write.
func Read(r io.Reader) (sar.Params, *mat.C, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return sar.Params{}, nil, fmt.Errorf("dataio: reading magic: %w", err)
	}
	if got != magic {
		return sar.Params{}, nil, fmt.Errorf("dataio: bad magic %q", got[:])
	}
	var h header
	if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
		return sar.Params{}, nil, fmt.Errorf("dataio: reading header: %w", err)
	}
	if h.Rows < 0 || h.Cols < 0 || h.Rows > 1<<20 || h.Cols > 1<<20 {
		return sar.Params{}, nil, fmt.Errorf("dataio: implausible dimensions %dx%d", h.Rows, h.Cols)
	}
	// Cap the total allocation so a corrupt header cannot exhaust memory:
	// 1<<24 complex64 elements = 128 MB, far above any supported image.
	if int64(h.Rows)*int64(h.Cols) > 1<<24 {
		return sar.Params{}, nil, fmt.Errorf("dataio: %dx%d matrix exceeds the size cap", h.Rows, h.Cols)
	}
	p := sar.Params{
		NumPulses: int(h.NumPulses), NumBins: int(h.NumBins),
		EnvelopeHalfWidth: int(h.EnvelopeHalfWidth),
		R0:                h.R0, DR: h.DR,
		PulseSpacing: h.PulseSpacing,
		Wavelength:   h.Wavelength,
		RangeRes:     h.RangeRes,
	}
	m := mat.NewC(int(h.Rows), int(h.Cols))
	buf := make([]byte, 8*m.Cols)
	for r := 0; r < m.Rows; r++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return sar.Params{}, nil, fmt.Errorf("dataio: reading row %d: %w", r, err)
		}
		row := m.Row(r)
		for i := range row {
			re := math.Float32frombits(binary.LittleEndian.Uint32(buf[8*i:]))
			im := math.Float32frombits(binary.LittleEndian.Uint32(buf[8*i+4:]))
			row[i] = complex(re, im)
		}
	}
	return p, m, nil
}

// WriteFile writes a container to path.
func WriteFile(path string, p sar.Params, m *mat.C) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, p, m); err != nil {
		return err
	}
	return f.Sync()
}

// ReadFile reads a container from path.
func ReadFile(path string) (sar.Params, *mat.C, error) {
	f, err := os.Open(path)
	if err != nil {
		return sar.Params{}, nil, err
	}
	defer f.Close()
	return Read(f)
}
