package dataio

import (
	"bytes"
	"testing"

	"sarmany/internal/mat"
	"sarmany/internal/sar"
)

// FuzzRead ensures arbitrary (corrupt) input can never panic the reader —
// it must either parse or return an error.
func FuzzRead(f *testing.F) {
	// Seed with a valid container and a few mutations.
	p := sar.DefaultParams()
	p.NumPulses, p.NumBins = 2, 3
	m := mat.NewC(2, 3)
	m.Set(0, 1, complex(1, -2))
	var buf bytes.Buffer
	if err := Write(&buf, p, m); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:8])
	f.Add([]byte("SARDATA1 garbage follows"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[10] = 0xff // huge row count
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, m, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful parse must produce a consistent matrix.
		if m.Rows < 0 || m.Cols < 0 || len(m.Data) != m.Rows*m.Cols {
			t.Fatalf("inconsistent matrix %dx%d len %d", m.Rows, m.Cols, len(m.Data))
		}
		_ = p
	})
}
