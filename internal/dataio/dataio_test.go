package dataio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"sarmany/internal/mat"
	"sarmany/internal/sar"
)

func sample() (sar.Params, *mat.C) {
	p := sar.DefaultParams()
	p.NumPulses = 4
	p.NumBins = 5
	m := mat.NewC(4, 5)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			m.Set(r, c, complex(float32(r)+0.5, -float32(c)))
		}
	}
	return p, m
}

func TestRoundTrip(t *testing.T) {
	p, m := sample()
	var buf bytes.Buffer
	if err := Write(&buf, p, m); err != nil {
		t.Fatal(err)
	}
	p2, m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Errorf("params changed: %+v vs %+v", p2, p)
	}
	if !m2.Equal(m) {
		t.Error("matrix changed")
	}
}

func TestRoundTripFile(t *testing.T) {
	p, m := sample()
	path := filepath.Join(t.TempDir(), "data.sar")
	if err := WriteFile(path, p, m); err != nil {
		t.Fatal(err)
	}
	p2, m2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p || !m2.Equal(m) {
		t.Error("file round trip changed data")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, _, err := Read(strings.NewReader("NOTSARDATA AT ALL")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	p, m := sample()
	var buf bytes.Buffer
	if err := Write(&buf, p, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{4, 10, len(full) - 7} {
		if _, _, err := Read(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "absent.sar")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestViewIsSerializedCompactly(t *testing.T) {
	p, m := sample()
	v := m.View(1, 1, 2, 3)
	var buf bytes.Buffer
	if err := Write(&buf, p, v); err != nil {
		t.Fatal(err)
	}
	_, m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Rows != 2 || m2.Cols != 3 {
		t.Fatalf("dims %dx%d", m2.Rows, m2.Cols)
	}
	if !m2.Equal(v) {
		t.Error("view contents changed")
	}
}
