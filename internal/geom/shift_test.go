package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestShiftCoordsMatchesChildCoords(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		r := 100 + 5000*rng.Float64()
		theta := 0.1 + (math.Pi-0.2)*rng.Float64()
		l := 0.5 + 100*rng.Float64()
		r1, t1, r2, t2 := ChildCoords(r, theta, l)
		r1s, t1s := ShiftCoords(r, theta, -l/2)
		r2s, t2s := ShiftCoords(r, theta, l/2)
		if r1 != r1s || t1 != t1s || r2 != r2s || t2 != t2s {
			t.Fatalf("ShiftCoords disagrees with ChildCoords at r=%v theta=%v l=%v", r, theta, l)
		}
	}
}

func TestShiftCoordsZeroOffsetIdentity(t *testing.T) {
	r, th := ShiftCoords(1234, 1.3, 0)
	if math.Abs(r-1234) > 1e-9 || math.Abs(th-1.3) > 1e-12 {
		t.Errorf("identity shift: (%v, %v)", r, th)
	}
}

func TestShiftCoordsRoundTrip(t *testing.T) {
	// Shifting into a frame and back recovers the original coordinates:
	// going to a frame at +o and then to a frame at -o relative to that
	// frame is the identity.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		r := 200 + 3000*rng.Float64()
		th := 0.3 + 2.4*rng.Float64()
		o := 200 * (rng.Float64() - 0.5)
		r2, th2 := ShiftCoords(r, th, o)
		r3, th3 := ShiftCoords(r2, th2, -o)
		if math.Abs(r3-r) > 1e-6*r || math.Abs(th3-th) > 1e-9 {
			t.Fatalf("round trip failed: (%v,%v) -> (%v,%v)", r, th, r3, th3)
		}
	}
}

func TestMergeStageK(t *testing.T) {
	aps := Stage0(16, 0, 1)
	parents := MergeStageK(aps, 4)
	if len(parents) != 4 {
		t.Fatalf("%d parents", len(parents))
	}
	for j, p := range parents {
		if math.Abs(p.Length-4) > 1e-12 {
			t.Errorf("parent %d length %v", j, p.Length)
		}
		// Centre is the mean of the group's centres.
		var want float64
		for i := 0; i < 4; i++ {
			want += aps[4*j+i].Center
		}
		want /= 4
		if math.Abs(p.Center-want) > 1e-12 {
			t.Errorf("parent %d centre %v want %v", j, p.Center, want)
		}
	}
	// Base-2 grouping agrees with MergeStage.
	a := MergeStageK(aps, 2)
	b := MergeStage(aps)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("base-2 MergeStageK disagrees with MergeStage at %d", i)
		}
	}
}

func TestMergeStageKInvalid(t *testing.T) {
	for _, c := range []struct {
		n, k int
	}{{6, 4}, {4, 1}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d k=%d accepted", c.n, c.k)
				}
			}()
			MergeStageK(make([]Aperture, c.n), c.k)
		}()
	}
}

func TestChildOffsets(t *testing.T) {
	o := ChildOffsets(2, 10)
	if o[0] != -5 || o[1] != 5 {
		t.Errorf("base-2 offsets %v", o)
	}
	o = ChildOffsets(4, 8)
	want := []float64{-12, -4, 4, 12}
	for i := range want {
		if o[i] != want[i] {
			t.Errorf("base-4 offsets %v", o)
			break
		}
	}
	// Offsets are symmetric and k*lChild spans the parent.
	o = ChildOffsets(3, 6)
	if o[1] != 0 || o[0] != -o[2] {
		t.Errorf("base-3 offsets %v", o)
	}
}
