package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestChildCoordsBroadside(t *testing.T) {
	// A broadside point (theta = pi/2) is symmetric between the children:
	// r1 == r2 and theta1 + theta2 == pi.
	r1, th1, r2, th2 := ChildCoords(1000, math.Pi/2, 10)
	if math.Abs(r1-r2) > 1e-9 {
		t.Errorf("broadside ranges differ: %v %v", r1, r2)
	}
	if math.Abs(th1+th2-math.Pi) > 1e-12 {
		t.Errorf("broadside angles not symmetric: %v %v", th1, th2)
	}
	want := math.Hypot(1000, 5)
	if math.Abs(r1-want) > 1e-9 {
		t.Errorf("r1 = %v, want %v", r1, want)
	}
}

func TestChildCoordsZeroLength(t *testing.T) {
	// With l = 0 the children coincide with the parent.
	r1, th1, r2, th2 := ChildCoords(500, 1.2, 0)
	if math.Abs(r1-500) > 1e-9 || math.Abs(r2-500) > 1e-9 {
		t.Errorf("ranges %v %v, want 500", r1, r2)
	}
	if math.Abs(th1-1.2) > 1e-12 || math.Abs(th2-1.2) > 1e-12 {
		t.Errorf("angles %v %v, want 1.2", th1, th2)
	}
}

func TestChildCoordsMatchesCosineForm(t *testing.T) {
	// The Cartesian and the published cosine-theorem forms must agree over
	// the whole operating region (far field, theta well inside (0, pi)).
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		r := 100 + 10000*rng.Float64()
		theta := 0.1 + (math.Pi-0.2)*rng.Float64()
		l := 0.1 + 100*rng.Float64()
		r1a, t1a, r2a, t2a := ChildCoords(r, theta, l)
		r1b, t1b, r2b, t2b := ChildCoordsCosine(r, theta, l)
		if math.Abs(r1a-r1b) > 1e-6*r || math.Abs(r2a-r2b) > 1e-6*r {
			t.Fatalf("range mismatch at r=%v theta=%v l=%v: (%v,%v) vs (%v,%v)", r, theta, l, r1a, r2a, r1b, r2b)
		}
		if math.Abs(t1a-t1b) > 1e-6 || math.Abs(t2a-t2b) > 1e-6 {
			t.Fatalf("angle mismatch at r=%v theta=%v l=%v: (%v,%v) vs (%v,%v)", r, theta, l, t1a, t2a, t1b, t2b)
		}
	}
}

func TestChildCoordsExactPointRecovery(t *testing.T) {
	// The distance from each child centre to the physical point must match
	// direct geometry: child centres at -/+ l/2 on the track (x axis).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		r := 50 + 5000*rng.Float64()
		theta := 0.05 + (math.Pi-0.1)*rng.Float64()
		l := 50 * rng.Float64()
		x, y := r*math.Cos(theta), r*math.Sin(theta)
		r1, th1, r2, th2 := ChildCoords(r, theta, l)
		// Reconstruct the point from each child's polar coordinates.
		x1 := -l/2 + r1*math.Cos(th1)
		y1 := r1 * math.Sin(th1)
		x2 := l/2 + r2*math.Cos(th2)
		y2 := r2 * math.Sin(th2)
		if math.Hypot(x1-x, y1-y) > 1e-8*r || math.Hypot(x2-x, y2-y) > 1e-8*r {
			t.Fatalf("point not recovered: (%v,%v) vs (%v,%v) and (%v,%v)", x, y, x1, y1, x2, y2)
		}
	}
}

func TestPolarGridMapping(t *testing.T) {
	g := NewPolarGrid(1001, 1000, 1, 4, 0, math.Pi)
	if g.NR != 1001 || g.NTheta != 4 {
		t.Fatalf("grid dims %d %d", g.NR, g.NTheta)
	}
	if math.Abs(g.Range(0)-1000) > 1e-12 || math.Abs(g.Range(1000)-2000) > 1e-12 {
		t.Errorf("range mapping wrong: %v %v", g.Range(0), g.Range(1000))
	}
	// Bin centres of 4 bins over [0, pi]: pi/8, 3pi/8, 5pi/8, 7pi/8.
	for k := 0; k < 4; k++ {
		want := (2*float64(k) + 1) * math.Pi / 8
		if math.Abs(g.Theta(k)-want) > 1e-12 {
			t.Errorf("Theta(%d) = %v, want %v", k, g.Theta(k), want)
		}
	}
	// Index functions invert the coordinate functions.
	if math.Abs(g.RangeIndex(g.Range(500))-500) > 1e-9 {
		t.Error("RangeIndex does not invert Range")
	}
	if math.Abs(g.ThetaIndex(g.Theta(2))-2) > 1e-9 {
		t.Error("ThetaIndex does not invert Theta")
	}
}

func TestPolarGridRefine(t *testing.T) {
	g := NewPolarGrid(10, 0, 1, 1, 0, math.Pi)
	g2 := g.Refine()
	if g2.NTheta != 2 {
		t.Fatalf("refined NTheta = %d", g2.NTheta)
	}
	// Refining preserves the covered angular interval.
	lo := g2.Theta0 - g2.DTheta/2
	hi := g2.Theta0 + (float64(g2.NTheta)-0.5)*g2.DTheta
	if math.Abs(lo-0) > 1e-12 || math.Abs(hi-math.Pi) > 1e-12 {
		t.Errorf("refined interval [%v, %v]", lo, hi)
	}
	// Ten refinements of a single beam give 1024 beams (the paper's config).
	gg := g
	for i := 0; i < 10; i++ {
		gg = gg.Refine()
	}
	if gg.NTheta != 1024 {
		t.Errorf("after 10 refinements NTheta = %d, want 1024", gg.NTheta)
	}
}

func TestApertureChildren(t *testing.T) {
	a := Aperture{Center: 100, Length: 8}
	minus, plus := a.Children()
	if minus.Center != 98 || plus.Center != 102 {
		t.Errorf("child centres %v %v", minus.Center, plus.Center)
	}
	if minus.Length != 4 || plus.Length != 4 {
		t.Errorf("child lengths %v %v", minus.Length, plus.Length)
	}
}

func TestStage0AndMerge(t *testing.T) {
	aps := Stage0(8, 0, 2) // 8 pulses spaced 2 m starting at track position 0
	if len(aps) != 8 {
		t.Fatalf("stage0 count %d", len(aps))
	}
	if aps[0].Center != 1 || aps[7].Center != 15 {
		t.Errorf("stage0 centres %v %v", aps[0].Center, aps[7].Center)
	}
	stage := aps
	for len(stage) > 1 {
		next := MergeStage(stage)
		if len(next) != len(stage)/2 {
			t.Fatalf("merge count %d from %d", len(next), len(stage))
		}
		for j, p := range next {
			m, q := stage[2*j], stage[2*j+1]
			if math.Abs(p.Center-(m.Center+q.Center)/2) > 1e-12 {
				t.Fatalf("parent centre %v from %v %v", p.Center, m.Center, q.Center)
			}
			if math.Abs(p.Length-(m.Length+q.Length)) > 1e-12 {
				t.Fatalf("parent length %v", p.Length)
			}
			// Consistency with Children: the parent's children are the inputs.
			cm, cp := p.Children()
			if math.Abs(cm.Center-m.Center) > 1e-12 || math.Abs(cp.Center-q.Center) > 1e-12 {
				t.Fatalf("Children() disagrees with MergeStage inputs")
			}
		}
		stage = next
	}
	if stage[0].Length != 16 || stage[0].Center != 8 {
		t.Errorf("full aperture %+v", stage[0])
	}
}

func TestMergeStageOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MergeStage(make([]Aperture, 3))
}
