package geom

import "math"

// SceneBox bounds the imaged area in track coordinates: azimuth (along the
// flight track) in [UMin, UMax] and cross-track slant range in [YMin, YMax].
// Every subaperture image of the FFBP pyramid must cover this box as seen
// from its own centre; SceneBox computes those per-aperture angular
// intervals.
type SceneBox struct {
	UMin, UMax float64
	YMin, YMax float64
	// ThetaPad widens the angular interval on each side by this fraction of
	// the interval, providing interpolation guard bins at the beam edges.
	ThetaPad float64
}

// ThetaBounds returns the angular interval covering the box as seen from a
// subaperture centred at track position c (angles measured from the track
// direction, as in ChildCoords).
func (b SceneBox) ThetaBounds(c float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, u := range [2]float64{b.UMin, b.UMax} {
		for _, y := range [2]float64{b.YMin, b.YMax} {
			th := math.Atan2(y, u-c)
			if th < lo {
				lo = th
			}
			if th > hi {
				hi = th
			}
		}
	}
	pad := (hi - lo) * b.ThetaPad
	return lo - pad, hi + pad
}

// GridFor returns the polar grid of a subaperture image for aperture a:
// ntheta beams covering the scene box as seen from a.Center, over the
// common range grid (nr bins from r0 spaced dr).
func (b SceneBox) GridFor(a Aperture, ntheta, nr int, r0, dr float64) PolarGrid {
	lo, hi := b.ThetaBounds(a.Center)
	return NewPolarGrid(nr, r0, dr, ntheta, lo, hi)
}
