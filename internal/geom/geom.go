// Package geom implements the subaperture merge geometry of fast factorized
// back-projection: the cosine-theorem equations (paper eqs. 1-4) that map a
// pixel of a merged (parent) subaperture image onto the contributing pixels
// of its two child subaperture images, and the polar grids those images are
// sampled on.
//
// Conventions. A subaperture is a segment of the (nominally linear) flight
// track. Its polar image a(r, theta) is sampled relative to the subaperture
// centre, with theta measured from the flight-track direction, so theta =
// pi/2 is broadside and theta in (0, pi). A parent subaperture of length 2l
// is formed from two children of length l whose centres sit at -l/2 (the
// "minus", earlier-in-track child) and +l/2 (the "plus" child) relative to
// the parent centre.
package geom

import "math"

// ChildCoords maps a parent-image pixel at polar position (r, theta) to the
// corresponding positions (r1, theta1) in the minus child image and
// (r2, theta2) in the plus child image, where l is the child subaperture
// length (so the child centres are at -l/2 and +l/2 along the track).
//
// These are paper eqs. 1-4, evaluated in the numerically direct Cartesian
// form: with the target at (r cos theta, r sin theta), the child-relative
// coordinates follow from shifting the origin by -/+ l/2 along the track.
// The Cartesian form is algebraically identical to the cosine-theorem form
// but avoids the acos cancellation for points near the track axis.
func ChildCoords(r, theta, l float64) (r1, theta1, r2, theta2 float64) {
	x := r * math.Cos(theta)
	y := r * math.Sin(theta)
	h := l / 2
	r1 = math.Hypot(x+h, y)
	r2 = math.Hypot(x-h, y)
	theta1 = math.Atan2(y, x+h)
	theta2 = math.Atan2(y, x-h)
	return r1, theta1, r2, theta2
}

// ChildCoordsCosine is the literal cosine-theorem formulation of paper
// eqs. 1-4. It is retained to validate ChildCoords against the published
// equations; production code uses ChildCoords.
func ChildCoordsCosine(r, theta, l float64) (r1, theta1, r2, theta2 float64) {
	h := l / 2
	r1 = math.Sqrt(r*r + h*h - 2*r*h*math.Cos(math.Pi-theta))
	r2 = math.Sqrt(r*r + h*h - 2*r*h*math.Cos(theta))
	theta1 = math.Acos(clamp1((r1*r1 + h*h - r*r) / (r1 * l)))
	theta2 = math.Pi - math.Acos(clamp1((r2*r2+h*h-r*r)/(r2*l)))
	return r1, theta1, r2, theta2
}

func clamp1(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < -1 {
		return -1
	}
	return x
}

// PolarGrid describes the sampling of a subaperture image: NR range bins
// spanning [R0, R0 + (NR-1)*DR] and NTheta angle bins spanning
// [Theta0, Theta0 + (NTheta-1)*DTheta]. A stage-0 subaperture (a single
// pulse) has NTheta == 1: one wide beam covering the whole angular interval.
type PolarGrid struct {
	NR     int
	R0, DR float64

	NTheta         int
	Theta0, DTheta float64
}

// NewPolarGrid builds a grid with nr range bins from r0 spaced dr, and
// ntheta angle bins spanning the closed interval [thetaMin, thetaMax]
// placed at bin centres: bin k covers thetaMin + k*W .. thetaMin + (k+1)*W
// with W = (thetaMax-thetaMin)/ntheta, sampled at the centre.
func NewPolarGrid(nr int, r0, dr float64, ntheta int, thetaMin, thetaMax float64) PolarGrid {
	w := (thetaMax - thetaMin) / float64(ntheta)
	return PolarGrid{
		NR: nr, R0: r0, DR: dr,
		NTheta: ntheta,
		Theta0: thetaMin + w/2,
		DTheta: w,
	}
}

// Range returns the range of bin i.
func (g PolarGrid) Range(i int) float64 { return g.R0 + float64(i)*g.DR }

// Theta returns the angle of bin k.
func (g PolarGrid) Theta(k int) float64 { return g.Theta0 + float64(k)*g.DTheta }

// RangeIndex returns the fractional bin index of range r.
func (g PolarGrid) RangeIndex(r float64) float64 { return (r - g.R0) / g.DR }

// ThetaIndex returns the fractional bin index of angle theta.
func (g PolarGrid) ThetaIndex(theta float64) float64 { return (theta - g.Theta0) / g.DTheta }

// Refine returns the grid for the next merge stage: same range sampling,
// twice the angular resolution over the same angular interval.
func (g PolarGrid) Refine() PolarGrid {
	lo := g.Theta0 - g.DTheta/2
	hi := g.Theta0 + (float64(g.NTheta)-0.5)*g.DTheta
	return NewPolarGrid(g.NR, g.R0, g.DR, g.NTheta*2, lo, hi)
}

// Aperture describes one subaperture of the factorization: its centre
// position along the track (metres, in scene coordinates) and its length.
type Aperture struct {
	Center float64
	Length float64
}

// Children returns the minus and plus child apertures of a.
func (a Aperture) Children() (minus, plus Aperture) {
	h := a.Length / 2
	minus = Aperture{Center: a.Center - h/2, Length: h}
	plus = Aperture{Center: a.Center + h/2, Length: h}
	return minus, plus
}

// Stage0 returns the np length-d apertures of the initial factorization of
// a track that starts at u0: aperture i is the single pulse at
// u0 + (i+0.5)*d.
func Stage0(np int, u0, d float64) []Aperture {
	out := make([]Aperture, np)
	for i := range out {
		out[i] = Aperture{Center: u0 + (float64(i)+0.5)*d, Length: d}
	}
	return out
}

// MergeStage returns the apertures of the next stage, pairing consecutive
// apertures of the current stage. len(cur) must be even.
func MergeStage(cur []Aperture) []Aperture {
	if len(cur)%2 != 0 {
		panic("geom: MergeStage needs an even number of apertures")
	}
	out := make([]Aperture, len(cur)/2)
	for j := range out {
		a, b := cur[2*j], cur[2*j+1]
		out[j] = Aperture{
			Center: (a.Center + b.Center) / 2,
			Length: a.Length + b.Length,
		}
	}
	return out
}
