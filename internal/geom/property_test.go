package geom

import (
	"math"
	"testing"
	"testing/quick"
)

// TestChildCoordsTriangleInequality: the child ranges can never differ
// from the parent range by more than the centre offset (l/2).
func TestChildCoordsTriangleInequality(t *testing.T) {
	f := func(rRaw, thRaw, lRaw float64) bool {
		r := 10 + clampAbs(rRaw, 1e5)
		th := 0.05 + math.Mod(clampAbs(thRaw, 1), 1)*(math.Pi-0.1)
		l := clampAbs(lRaw, 100)
		r1, _, r2, _ := ChildCoords(r, th, l)
		h := l/2 + 1e-9
		return math.Abs(r1-r) <= h && math.Abs(r2-r) <= h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGridIndexInversion: ThetaIndex/RangeIndex invert Theta/Range for
// every bin of every grid.
func TestGridIndexInversion(t *testing.T) {
	f := func(nrRaw, ntRaw uint8, r0Raw, drRaw, cRaw float64) bool {
		nr := int(nrRaw)%64 + 2
		nt := int(ntRaw)%64 + 1
		r0 := 1 + clampAbs(r0Raw, 1e4)
		dr := 0.01 + clampAbs(drRaw, 10)
		c := clampAbs(cRaw, 1000) - 500
		box := SceneBox{UMin: c - 50, UMax: c + 50, YMin: r0, YMax: r0 + float64(nr)*dr}
		g := box.GridFor(Aperture{Center: c, Length: 10}, nt, nr, r0, dr)
		for i := 0; i < nr; i += 7 {
			if math.Abs(g.RangeIndex(g.Range(i))-float64(i)) > 1e-6 {
				return false
			}
		}
		for k := 0; k < nt; k += 3 {
			if math.Abs(g.ThetaIndex(g.Theta(k))-float64(k)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampAbs(x, m float64) float64 {
	if x != x || math.IsInf(x, 0) {
		return 1
	}
	v := math.Abs(x)
	for v >= m {
		v /= 16
	}
	return v
}
