package geom

import "math"

// ShiftCoords re-expresses the polar position (r, theta) — given relative
// to a subaperture centred at track position 0 — in the frame of a
// subaperture centred at track position offset. It is the single-child
// generalization of ChildCoords: ChildCoords(r, theta, l) equals
// (ShiftCoords(r, theta, -l/2), ShiftCoords(r, theta, +l/2)).
//
// Factorizations with merge bases above two (Ulander et al.'s general
// formulation) need this form: a base-k merge combines k children whose
// centres sit at offsets (i - (k-1)/2) * lChild for i = 0..k-1.
func ShiftCoords(r, theta, offset float64) (rc, thetac float64) {
	x := r * math.Cos(theta)
	y := r * math.Sin(theta)
	return math.Hypot(x-offset, y), math.Atan2(y, x-offset)
}

// MergeStageK returns the next-stage apertures of a base-k factorization,
// grouping k consecutive apertures per parent. len(cur) must be a
// multiple of k.
func MergeStageK(cur []Aperture, k int) []Aperture {
	if k < 2 || len(cur)%k != 0 {
		panic("geom: MergeStageK needs a group size >= 2 dividing the aperture count")
	}
	out := make([]Aperture, len(cur)/k)
	for j := range out {
		var center, length float64
		for i := 0; i < k; i++ {
			center += cur[k*j+i].Center
			length += cur[k*j+i].Length
		}
		out[j] = Aperture{Center: center / float64(k), Length: length}
	}
	return out
}

// ChildOffsets returns the centre offsets of the k children of a parent
// whose children each have length lChild: (i - (k-1)/2) * lChild.
func ChildOffsets(k int, lChild float64) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = (float64(i) - float64(k-1)/2) * lChild
	}
	return out
}
