package geom

import (
	"math"
	"testing"
)

func TestThetaBoundsBroadside(t *testing.T) {
	b := SceneBox{UMin: -100, UMax: 100, YMin: 1000, YMax: 1200}
	lo, hi := b.ThetaBounds(0)
	// Symmetric about pi/2 for a centred aperture.
	if math.Abs((lo+hi)/2-math.Pi/2) > 1e-12 {
		t.Errorf("interval not centred on broadside: [%v, %v]", lo, hi)
	}
	// Extremes come from the near-range corners.
	want := math.Atan2(1000, 100)
	if math.Abs(lo-want) > 1e-12 {
		t.Errorf("lo = %v, want %v", lo, want)
	}
}

func TestThetaBoundsCoversAllCorners(t *testing.T) {
	b := SceneBox{UMin: -150, UMax: 150, YMin: 2000, YMax: 2500}
	for _, c := range []float64{-512, -100, 0, 333, 512} {
		lo, hi := b.ThetaBounds(c)
		for _, u := range []float64{b.UMin, 0, b.UMax} {
			for _, y := range []float64{b.YMin, 2222, b.YMax} {
				th := math.Atan2(y, u-c)
				if th < lo || th > hi {
					t.Fatalf("point (%v,%v) seen from %v at angle %v outside [%v,%v]", u, y, c, th, lo, hi)
				}
			}
		}
	}
}

func TestThetaBoundsPad(t *testing.T) {
	b := SceneBox{UMin: -10, UMax: 10, YMin: 100, YMax: 110}
	lo0, hi0 := b.ThetaBounds(0)
	b.ThetaPad = 0.1
	lo1, hi1 := b.ThetaBounds(0)
	if !(lo1 < lo0 && hi1 > hi0) {
		t.Errorf("pad did not widen interval: [%v,%v] vs [%v,%v]", lo1, hi1, lo0, hi0)
	}
	w0 := hi0 - lo0
	if math.Abs((hi1-lo1)-w0*1.2) > 1e-12 {
		t.Errorf("pad width wrong: %v want %v", hi1-lo1, w0*1.2)
	}
}

func TestGridForMatchesBounds(t *testing.T) {
	b := SceneBox{UMin: -50, UMax: 50, YMin: 900, YMax: 1000}
	a := Aperture{Center: 25, Length: 64}
	g := b.GridFor(a, 8, 101, 900, 1)
	if g.NTheta != 8 || g.NR != 101 || g.R0 != 900 || g.DR != 1 {
		t.Fatalf("grid %+v", g)
	}
	lo, hi := b.ThetaBounds(25)
	gridLo := g.Theta0 - g.DTheta/2
	gridHi := g.Theta0 + (float64(g.NTheta)-0.5)*g.DTheta
	if math.Abs(gridLo-lo) > 1e-12 || math.Abs(gridHi-hi) > 1e-12 {
		t.Errorf("grid interval [%v,%v], want [%v,%v]", gridLo, gridHi, lo, hi)
	}
}
