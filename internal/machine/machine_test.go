package machine

import (
	"errors"
	"testing"
)

// countMachine is a Machine that records charges, for testing the buffer
// helpers.
type countMachine struct {
	loads, stores    int
	loadB, storeB    int
	lastLoad, lastSt uint32
}

func (c *countMachine) FMA(int)  {}
func (c *countMachine) Flop(int) {}
func (c *countMachine) IOp(int)  {}
func (c *countMachine) Div(int)  {}
func (c *countMachine) Sqrt(int) {}
func (c *countMachine) Trig(int) {}
func (c *countMachine) Load(addr uint32, n int) {
	c.loads++
	c.loadB += n
	c.lastLoad = addr
}
func (c *countMachine) Store(addr uint32, n int) {
	c.stores++
	c.storeB += n
	c.lastSt = addr
}
func (c *countMachine) Cycles() float64  { return 0 }
func (c *countMachine) ClockHz() float64 { return 1e9 }

func TestBumpAllocAligned(t *testing.T) {
	b := NewBump(0x1000, 64)
	a1, err := b.Alloc(3)
	if err != nil || a1 != 0x1000 {
		t.Fatalf("first alloc %#x err %v", a1, err)
	}
	a2, err := b.Alloc(8)
	if err != nil || a2 != 0x1008 {
		t.Fatalf("second alloc %#x (want 8-byte aligned) err %v", a2, err)
	}
	if b.Used() != 16 {
		t.Errorf("Used = %d", b.Used())
	}
}

func TestBumpAllocExhaustion(t *testing.T) {
	b := NewBump(0, 16)
	if _, err := b.Alloc(16); err != nil {
		t.Fatalf("fitting alloc failed: %v", err)
	}
	if _, err := b.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("expected ErrOutOfMemory, got %v", err)
	}
	if _, err := NewBump(0, 8).Alloc(-1); err == nil {
		t.Error("negative alloc accepted")
	}
}

func TestBufCAddressesAndCharges(t *testing.T) {
	m := &countMachine{}
	b, err := NewBufC(NewBump(0x2000, 1024), 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.ElemAddr(3) != 0x2000+24 {
		t.Errorf("ElemAddr(3) = %#x", b.ElemAddr(3))
	}
	b.Store(m, 3, complex(1, 2))
	if got := b.Load(m, 3); got != complex(1, 2) {
		t.Errorf("round trip = %v", got)
	}
	if m.loads != 1 || m.stores != 1 || m.loadB != 8 || m.storeB != 8 {
		t.Errorf("charges: %+v", m)
	}
	if m.lastLoad != 0x2000+24 || m.lastSt != 0x2000+24 {
		t.Errorf("addresses: %#x %#x", m.lastLoad, m.lastSt)
	}
}

func TestBufFAddressesAndCharges(t *testing.T) {
	m := &countMachine{}
	b, err := NewBufF(NewBump(0x3000, 64), 4)
	if err != nil {
		t.Fatal(err)
	}
	b.Store(m, 2, 2.5)
	if got := b.Load(m, 2); got != 2.5 {
		t.Errorf("round trip = %v", got)
	}
	if m.loadB != 4 || m.storeB != 4 {
		t.Errorf("byte charges: %+v", m)
	}
	if b.ElemAddr(2) != 0x3000+8 {
		t.Errorf("ElemAddr(2) = %#x", b.ElemAddr(2))
	}
}

func TestNewBufTooLarge(t *testing.T) {
	if _, err := NewBufC(NewBump(0, 16), 10); err == nil {
		t.Error("oversized BufC accepted")
	}
	if _, err := NewBufF(NewBump(0, 8), 10); err == nil {
		t.Error("oversized BufF accepted")
	}
}

func TestSeconds(t *testing.T) {
	m := &countMachine{}
	if s := Seconds(m); s != 0 {
		t.Errorf("Seconds = %v", s)
	}
}
