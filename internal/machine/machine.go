// Package machine defines the abstract instrumented processor that the
// mapped SAR kernels run on. A kernel performs its real arithmetic in Go —
// producing real images — while charging the machine for every abstract
// operation it would execute (fused multiply-adds, integer address
// arithmetic, loads, stores, software square roots and trigonometry). Each
// machine implementation translates that operation stream into elapsed
// cycles according to its own timing model:
//
//   - emu.Core models an Epiphany core: dual-issue FPU/IALU, single-cycle
//     local-store accesses, stalling remote and off-chip reads, posted
//     writes, software square root and trigonometry.
//   - refcpu.CPU models the sequential Intel reference: wide superscalar
//     issue, hardware sqrt/divide, a three-level cache hierarchy in front
//     of DRAM.
//
// The same kernel source therefore yields both the computed result and a
// per-machine execution-time estimate, which is exactly the comparison the
// paper's Table I makes.
package machine

import "sync"

// Machine is the operation-stream sink kernels charge as they execute.
// All charging methods take a count so tight loops can batch.
type Machine interface {
	// FMA charges n fused multiply-add operations (the Epiphany FPU
	// executes one per cycle; the reference CPU has no FMA and issues a
	// multiply and an add).
	FMA(n int)
	// Flop charges n other single-precision floating-point operations.
	Flop(n int)
	// IOp charges n integer/address ALU operations.
	IOp(n int)
	// Div charges n floating-point divides.
	Div(n int)
	// Sqrt charges n square roots.
	Sqrt(n int)
	// Trig charges n trigonometric/transcendental evaluations (sincos,
	// atan2, acos — one charge per call).
	Trig(n int)
	// Load charges a read of n bytes at addr. The machine classifies the
	// address (local bank / remote core / off-chip / cache hierarchy) and
	// applies the corresponding cost.
	Load(addr uint32, n int)
	// Store charges a write of n bytes at addr.
	Store(addr uint32, n int)
	// Cycles returns the cycles elapsed so far on this machine, including
	// any pending dual-issue window.
	Cycles() float64
	// ClockHz returns the machine's clock frequency, for converting
	// cycles to seconds.
	ClockHz() float64
}

// Seconds returns m's elapsed time in seconds.
func Seconds(m Machine) float64 {
	return m.Cycles() / m.ClockHz()
}

// Alloc hands out address ranges in some region of a machine's address
// space, so kernels can place data "in local memory" or "in external
// SDRAM" and have loads and stores costed accordingly.
type Alloc interface {
	// Alloc reserves n bytes and returns the base address.
	Alloc(n int) (uint32, error)
}

// BufC is a complex64 array bound to an address range: element i lives at
// Addr + 8*i. The Data slice holds the actual values the kernel computes
// with; the address is only used for cost classification.
type BufC struct {
	Addr uint32
	Data []complex64
}

// NewBufC allocates n complex64 elements from a.
func NewBufC(a Alloc, n int) (*BufC, error) {
	addr, err := a.Alloc(8 * n)
	if err != nil {
		return nil, err
	}
	return &BufC{Addr: addr, Data: make([]complex64, n)}, nil
}

// ElemAddr returns the address of element i.
func (b *BufC) ElemAddr(i int) uint32 { return b.Addr + uint32(8*i) }

// Load reads element i, charging m for an 8-byte load.
func (b *BufC) Load(m Machine, i int) complex64 {
	m.Load(b.ElemAddr(i), 8)
	return b.Data[i]
}

// Store writes element i, charging m for an 8-byte store. The paper notes
// that representing complex numbers as a struct forces single 64-bit MOVs
// instead of two 32-bit MOVs; an 8-byte transfer models exactly that.
func (b *BufC) Store(m Machine, i int, v complex64) {
	m.Store(b.ElemAddr(i), 8)
	b.Data[i] = v
}

// BufF is a float32 array bound to an address range: element i lives at
// Addr + 4*i.
type BufF struct {
	Addr uint32
	Data []float32
}

// NewBufF allocates n float32 elements from a.
func NewBufF(a Alloc, n int) (*BufF, error) {
	addr, err := a.Alloc(4 * n)
	if err != nil {
		return nil, err
	}
	return &BufF{Addr: addr, Data: make([]float32, n)}, nil
}

// ElemAddr returns the address of element i.
func (b *BufF) ElemAddr(i int) uint32 { return b.Addr + uint32(4*i) }

// Load reads element i, charging m for a 4-byte load.
func (b *BufF) Load(m Machine, i int) float32 {
	m.Load(b.ElemAddr(i), 4)
	return b.Data[i]
}

// Store writes element i, charging m for a 4-byte store.
func (b *BufF) Store(m Machine, i int, v float32) {
	m.Store(b.ElemAddr(i), 4)
	b.Data[i] = v
}

// Bump is a bump allocator over [base, base+size). It is safe for
// concurrent use: shared regions (a chip's external SDRAM) are allocated
// from by several simulated cores at once.
type Bump struct {
	mu                sync.Mutex
	base, next, limit uint32
}

// NewBump returns a bump allocator over the given region.
func NewBump(base uint32, size int) *Bump {
	return &Bump{base: base, next: base, limit: base + uint32(size)}
}

// Alloc reserves n bytes, 8-byte aligned.
func (b *Bump) Alloc(n int) (uint32, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a := (b.next + 7) &^ 7
	if n < 0 || a+uint32(n) > b.limit || a+uint32(n) < a {
		return 0, ErrOutOfMemory
	}
	b.next = a + uint32(n)
	return a, nil
}

// Used returns the number of bytes allocated so far (including alignment
// padding).
func (b *Bump) Used() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int(b.next - b.base)
}

// ErrOutOfMemory is returned when an allocation does not fit its region —
// e.g. when a kernel tries to place more than 8 KB in one Epiphany local
// memory bank.
var ErrOutOfMemory = errOOM{}

type errOOM struct{}

func (errOOM) Error() string { return "machine: out of memory in allocation region" }
